"""Job-server tests: HTTP round trips, dedupe, SSE, and restart recovery.

Each server runs in-process on a background thread (``start_background``)
bound to a free port; clients are plain ``urllib`` over the loopback.
"""

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.api.solve import run_spec
from repro.api.spec import JobSpec, spec_hash
from repro.engine.sink import JsonlSink
from repro.server import JobServer, JobStore
from repro.server.store import JobStoreError
from repro.testing import faults
from repro.testing.faults import Fault, FaultPlan


@pytest.fixture(autouse=True)
def _isolated_faults(monkeypatch):
    monkeypatch.delenv(faults.ENV_VAR, raising=False)
    faults.clear()
    yield
    faults.clear()

SPEC = {
    "problems": [
        {"graph": {"family": "random_regular", "n": n, "delta": 6}}
        for n in (80, 120, 160)
    ],
    "run": {"algorithm": "delta_plus_one", "backend": "array"},
}


# --------------------------------------------------------------------------- #
# HTTP helpers
# --------------------------------------------------------------------------- #


def get(url: str):
    with urllib.request.urlopen(url, timeout=30) as response:
        return response.status, json.load(response)


def post(url: str, document) -> tuple[int, dict]:
    body = document if isinstance(document, bytes) else json.dumps(document).encode()
    request = urllib.request.Request(url, data=body, method="POST",
                                     headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, json.load(response)


def http_error(callable_):
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        callable_()
    payload = json.load(excinfo.value)
    return excinfo.value.code, payload


def wait_terminal(url: str, job_id: str, timeout: float = 120.0) -> dict:
    deadline = time.time() + timeout
    while time.time() < deadline:
        _, status = get(f"{url}/jobs/{job_id}")
        if status["state"] in ("done", "failed"):
            return status
        time.sleep(0.1)
    raise AssertionError(f"job {job_id} still {status['state']} after {timeout}s")


def sse_events(url: str, job_id: str, timeout: float = 120.0) -> list[tuple[str, dict]]:
    """Read the job's SSE stream until its terminal event."""
    events, kind = [], None
    with urllib.request.urlopen(f"{url}/jobs/{job_id}/events", timeout=timeout) as stream:
        for raw in stream:
            line = raw.decode("utf-8").rstrip("\n")
            if line.startswith("event: "):
                kind = line[len("event: "):]
            elif line.startswith("data: "):
                events.append((kind, json.loads(line[len("data: "):])))
                if kind in ("done", "failed"):
                    break
    return events


@pytest.fixture
def server(tmp_path):
    instance = JobServer(tmp_path / "state", port=0, workers=2).start_background()
    yield instance
    instance.stop()


# --------------------------------------------------------------------------- #
# The store
# --------------------------------------------------------------------------- #


class TestJobStore:
    def test_create_is_content_addressed(self, tmp_path):
        store = JobStore(tmp_path)
        first = store.create("abc123", {"k": 1})
        again = store.create("abc123", {"k": 1})
        assert first == again and store.job_ids() == ["abc123"]

    def test_update_round_trips_atomically(self, tmp_path):
        store = JobStore(tmp_path)
        store.create("abc123", {})
        store.update("abc123", state="running", cells_total=5)
        status = store.load("abc123")
        assert (status.state, status.cells_total) == ("running", 5)
        assert not list(store.job_dir("abc123").glob("*.tmp"))  # replace, not leave

    def test_malformed_ids_rejected(self, tmp_path):
        store = JobStore(tmp_path)
        for bad in ("", "../escape", "ABC", "a/b"):
            with pytest.raises(JobStoreError, match="malformed job id"):
                store.job_dir(bad)

    def test_unknown_fields_and_states_rejected(self, tmp_path):
        store = JobStore(tmp_path)
        store.create("abc", {})
        with pytest.raises(JobStoreError, match="no field"):
            store.update("abc", nope=1)
        with pytest.raises(JobStoreError, match="unknown job state"):
            store.update("abc", state="exploded")

    def test_incomplete_ids_are_queued_and_running(self, tmp_path):
        store = JobStore(tmp_path)
        for job_id, state in (("aa", "queued"), ("bb", "running"),
                              ("cc", "done"), ("dd", "failed")):
            store.create(job_id, {})
            store.update(job_id, state=state)
        assert store.incomplete_job_ids() == ["aa", "bb"]
        assert store.counts() == {"queued": 1, "running": 1, "done": 1, "failed": 1}

    def test_records_skip_manifest_and_torn_tail(self, tmp_path):
        store = JobStore(tmp_path)
        store.create("ab", {})
        path = store.records_path("ab")
        with JsonlSink(path) as sink:
            from test_engine_sink import manifest

            sink.start(manifest())
            sink.write("c1", {"rounds": 2})
        with path.open("a") as handle:
            handle.write('{"cell": "c2", "rec')  # torn: the write never finished
        assert [obj["cell"] for obj in store.records("ab")] == ["c1"]
        assert store.manifest("ab")["task"] == "kdelta"


# --------------------------------------------------------------------------- #
# End-to-end over HTTP
# --------------------------------------------------------------------------- #


class TestSubmitAndPoll:
    def test_job_runs_to_done_with_manifest_parity(self, server, tmp_path):
        code, submitted = post(server.url + "/jobs", SPEC)
        assert code == 201 and submitted["cached"] is False
        job_id = submitted["id"]
        assert job_id == spec_hash(JobSpec.from_dict(SPEC))  # content address

        status = wait_terminal(server.url, job_id)
        assert status["state"] == "done"
        assert status["cells_done"] == status["cells_total"] == 3
        assert status["manifest"]["spec_hash"] == job_id
        assert status["backend_tier"] == "array"

        # records match a local run of the very same spec, byte for byte
        # (modulo the wall-clock seconds field)
        _, served = get(f"{server.url}/jobs/{job_id}/records")
        local = run_spec(SPEC, sink=JsonlSink(tmp_path / "local.jsonl"))[0]
        assert len(served["records"]) == 3
        for obj, record in zip(served["records"], local.records):
            expected = {k: v for k, v in record.items() if k != "seconds"}
            got = {k: v for k, v in obj["record"].items() if k != "seconds"}
            assert got == expected

    def test_resubmission_is_a_cache_hit(self, server):
        _, first = post(server.url + "/jobs", SPEC)
        wait_terminal(server.url, first["id"])
        executed = server.store.load(first["id"])
        code, again = post(server.url + "/jobs", SPEC)
        assert code == 200 and again["cached"] is True
        assert again["id"] == first["id"] and again["state"] == "done"
        # no re-execution: the attempt counter did not move
        assert server.store.load(first["id"]).attempts == executed.attempts == 1

    def test_dedupe_ignores_key_order_and_default_fields(self, server):
        _, first = post(server.url + "/jobs", SPEC)
        reordered = {"run": {**SPEC["run"], "workers": 1}, "problems": SPEC["problems"]}
        code, again = post(server.url + "/jobs", reordered)
        assert code == 200 and again["id"] == first["id"] and again["cached"]

    def test_jobs_listing(self, server):
        _, submitted = post(server.url + "/jobs", SPEC)
        _, listing = get(server.url + "/jobs")
        assert [job["id"] for job in listing["jobs"]] == [submitted["id"]]

    def test_healthz_reports_backends_and_tiers(self, server):
        from repro import __version__

        _, health = get(server.url + "/healthz")
        assert health["status"] == "ok" and health["version"] == __version__
        assert {info["backend"] for info in health["backends"]} >= {"reference", "array", "jit"}
        assert health["backend_tiers"]["array"] == "array"
        assert health["backend_tiers"]["jit"].startswith("jit:")
        assert set(health["jobs"]) == {"queued", "running", "done", "failed"}


class TestValidation:
    def test_bad_json_is_400(self, server):
        code, payload = http_error(lambda: post(server.url + "/jobs", b"{not json"))
        assert code == 400 and "JSON" in payload["error"]

    def test_unknown_algorithm_is_422(self, server):
        bad = {**SPEC, "run": {"algorithm": "quantum_rainbow"}}
        code, payload = http_error(lambda: post(server.url + "/jobs", bad))
        assert code == 422 and "quantum_rainbow" in payload["error"]

    def test_bad_params_are_422(self, server):
        bad = {**SPEC, "run": {"algorithm": "kdelta", "params": {"k": -3}}}
        code, _ = http_error(lambda: post(server.url + "/jobs", bad))
        assert code == 422

    def test_unknown_backend_is_422(self, server):
        bad = {**SPEC, "run": {**SPEC["run"], "backend": "gpu9000"}}
        code, payload = http_error(lambda: post(server.url + "/jobs", bad))
        assert code == 422 and "gpu9000" in payload["error"]

    def test_unknown_graph_family_is_422(self, server):
        bad = {**SPEC, "problems": [{"graph": {"family": "nope", "n": 10, "delta": 3}}]}
        code, payload = http_error(lambda: post(server.url + "/jobs", bad))
        assert code == 422 and "nope" in payload["error"]
        # validation rejected it before it became a job
        assert server.store.job_ids() == []

    def test_unknown_job_is_404(self, server):
        code, _ = http_error(lambda: get(server.url + "/jobs/abcdef0123456789"))
        assert code == 404

    def test_unknown_route_is_404_and_wrong_method_405(self, server):
        assert http_error(lambda: get(server.url + "/nope"))[0] == 404
        assert http_error(lambda: post(server.url + "/healthz", {}))[0] == 405


class TestEvents:
    def test_sse_streams_every_cell_then_done(self, server):
        _, submitted = post(server.url + "/jobs", SPEC)
        events = sse_events(server.url, submitted["id"])
        kinds = [kind for kind, _ in events]
        assert kinds[-1] == "done"
        cells = [data for kind, data in events if kind == "cell"]
        assert len(cells) == 3 and len({c["cell"] for c in cells}) == 3
        assert [c["done"] for c in cells] == [1, 2, 3]
        assert all(c["total"] == 3 for c in cells)
        assert all("rounds" in c["record"] for c in cells)

    def test_sse_on_finished_job_replays_history(self, server):
        _, submitted = post(server.url + "/jobs", SPEC)
        wait_terminal(server.url, submitted["id"])
        events = sse_events(server.url, submitted["id"])
        kinds = [kind for kind, _ in events]
        assert kinds == ["cell", "cell", "cell", "done"]
        assert events[-1][1]["state"] == "done"


# --------------------------------------------------------------------------- #
# Restart recovery
# --------------------------------------------------------------------------- #


class TestRestartRecovery:
    def test_killed_job_resumes_and_matches_uninterrupted_run(self, tmp_path):
        state_dir = tmp_path / "state"
        # SystemExit at the per-cell seam is a BaseException: it escapes the
        # queue's `except Exception`, so the job stays `running` on disk —
        # exactly a SIGKILL mid-cell.  (reap_interval=None: the point here is
        # the *restart* recovery path, not the in-process reaper.)
        plan = FaultPlan((Fault(site="server-cell", op="raise",
                                exception="SystemExit", message="simulated kill",
                                match={"done": 2}, once="server-kill"),),
                         marker_dir=str(tmp_path))
        faults.install(plan)
        try:
            first = JobServer(state_dir, port=0, workers=1,
                              reap_interval=None).start_background()
            _, submitted = post(first.url + "/jobs", SPEC)
            job_id = submitted["id"]
            deadline = time.time() + 120
            while "server-kill" not in faults.fired_names():
                assert time.time() < deadline, "injected kill never fired"
                time.sleep(0.05)
            time.sleep(0.3)  # let the dying worker settle
            first.stop(abort=True)
        finally:
            faults.clear()

        # the crash left the job incomplete — not failed — with durable cells
        crashed = JobStore(state_dir).load(job_id)
        assert crashed.state == "running"
        partial = JobStore(state_dir).records(job_id)
        assert 0 < len(partial) < 3
        partial_cells = {obj["cell"] for obj in partial}

        second = JobServer(state_dir, port=0, workers=1).start_background()
        try:
            status = wait_terminal(second.url, job_id)
            assert status["state"] == "done"
            assert status["cells_done"] == status["cells_total"] == 3
            assert status["attempts"] == 2

            # byte-identical to an uninterrupted run: resumed cells untouched,
            # re-run cells equal modulo the wall-clock seconds field
            _, served = get(f"{second.url}/jobs/{job_id}/records")
            clean = run_spec(SPEC, sink=JsonlSink(tmp_path / "clean.jsonl"))[0]
            assert len(served["records"]) == 3
            for obj, record in zip(served["records"], clean.records):
                expected = {k: v for k, v in record.items() if k != "seconds"}
                got = {k: v for k, v in obj["record"].items() if k != "seconds"}
                assert got == expected
            by_cell = {obj["cell"]: obj["record"] for obj in served["records"]}
            for cell, record in ((o["cell"], o["record"]) for o in partial):
                assert by_cell[cell] == record  # resumed exactly, never re-run

            # ... and the finished job is now a cache hit
            code, again = post(second.url + "/jobs", SPEC)
            assert code == 200 and again["cached"] is True
            assert len(partial_cells) < 3  # the kill really was mid-job
        finally:
            second.stop()

    def test_failed_job_reports_error_and_retries_on_resubmit(self, server):
        # valid as a document, impossible as a graph (degree >= n): the
        # generator raises at execution time, after the job was accepted
        doomed = {
            "problems": [{"graph": {"family": "random_regular", "n": 5, "delta": 10}}],
            "run": {"algorithm": "delta_plus_one", "backend": "array"},
        }
        _, submitted = post(server.url + "/jobs", doomed)
        status = wait_terminal(server.url, submitted["id"])
        assert status["state"] == "failed"
        # the error is a structured object, not a bare string
        error = status["error"]
        assert error["kind"] == "error" and error["message"]
        assert error["type"] and error["attempts"] == 1
        assert error["traceback_digest"] and len(error["traceback_digest"]) == 16
        # ... and the SSE history replays the same structured failure
        events = sse_events(server.url, submitted["id"])
        assert events[-1][0] == "failed"
        assert events[-1][1]["error"]["type"] == error["type"]
        # a resubmission of a failed job retries instead of caching the failure
        code, again = post(server.url + "/jobs", doomed)
        assert code == 201 and again["cached"] is False
        status = wait_terminal(server.url, submitted["id"])
        assert status["state"] == "failed" and status["attempts"] == 2


# --------------------------------------------------------------------------- #
# The fault plane: reaper, drain, structured errors
# --------------------------------------------------------------------------- #


class TestFaultPlane:
    def test_reaper_fails_jobs_whose_executor_died(self, tmp_path):
        # A BaseException ends the executor without terminal bookkeeping; on a
        # server that never restarts, only the reaper can surface that.
        plan = FaultPlan((Fault(site="server-cell", op="raise",
                                exception="SystemExit", message="executor died",
                                match={"done": 1}, once="reap-kill"),),
                         marker_dir=str(tmp_path))
        faults.install(plan)
        server = JobServer(tmp_path / "state", port=0, workers=1,
                           reap_interval=0.2).start_background()
        try:
            _, submitted = post(server.url + "/jobs", SPEC)
            status = wait_terminal(server.url, submitted["id"], timeout=60)
            assert status["state"] == "failed"
            assert status["error"]["type"] == "SystemExit"
            assert status["error"]["kind"] == "interrupt"
            _, health = get(server.url + "/healthz")
            assert health["queue"]["reaped_total"] == 1
        finally:
            faults.clear()
            server.stop()

    def test_healthz_reports_the_queue(self, server):
        _, health = get(server.url + "/healthz")
        assert health["queue"]["pending"] == 0
        assert health["queue"]["reaped_total"] == 0
        assert health["queue"]["drain_timeout"] == 30.0

    def test_graceful_stop_drains_and_persists(self, tmp_path):
        server = JobServer(tmp_path / "state", port=0, workers=1).start_background()
        _, submitted = post(server.url + "/jobs", SPEC)
        server.stop()  # graceful: wait for the running job, persist the rest
        assert server.drained_clean
        status = JobStore(tmp_path / "state").load(submitted["id"])
        # finished within the budget, or dropped back to `queued` for restart
        assert status.state in ("done", "queued")

    def test_drain_timeout_reports_unclean_and_leaves_job_resumable(self, tmp_path):
        plan = FaultPlan((Fault(site="server-cell", op="hang", seconds=6.0,
                                match={"done": 1}, once="drain-hang"),),
                         marker_dir=str(tmp_path))
        faults.install(plan)
        server = JobServer(tmp_path / "state", port=0, workers=1,
                           drain_timeout=0.3, reap_interval=None).start_background()
        try:
            _, submitted = post(server.url + "/jobs", SPEC)
            deadline = time.time() + 60
            while "drain-hang" not in faults.fired_names():
                assert time.time() < deadline, "injected hang never fired"
                time.sleep(0.05)
            server.stop()  # the hung job cannot finish within 0.3s
            assert not server.drained_clean
            status = JobStore(tmp_path / "state").load(submitted["id"])
            assert status.state == "running"  # resumable: recovery re-queues it
        finally:
            faults.clear()


# --------------------------------------------------------------------------- #
# The process execution plane
# --------------------------------------------------------------------------- #


class TestProcessExecution:
    def test_invalid_execution_mode_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="execution"):
            JobServer(tmp_path / "state", port=0, execution="fiber")

    def test_auto_resolves_by_core_count(self, tmp_path, monkeypatch):
        import repro.engine.sink as sink_mod
        import repro.server.queue as queue_mod

        monkeypatch.setattr(sink_mod, "machine_cores", lambda: 8)
        monkeypatch.setattr(queue_mod, "machine_cores", lambda: 8)
        many = JobServer(tmp_path / "a", port=0, workers=2, execution="auto")
        assert many.queue.execution == "process"
        assert many.queue.job_workers == 4  # 8 cores over 2 job slots
        monkeypatch.setattr(sink_mod, "machine_cores", lambda: 1)
        one = JobServer(tmp_path / "b", port=0, workers=2, execution="auto")
        assert one.queue.execution == "thread"
        assert one.queue.job_workers is None

    def test_healthz_reports_execution_plane(self, tmp_path):
        server = JobServer(tmp_path / "state", port=0, workers=2,
                           execution="process", job_workers=3).start_background()
        try:
            _, health = get(server.url + "/healthz")
            assert health["execution"] == {"mode": "process",
                                           "job_workers": 3, "pool_size": 2}
        finally:
            server.stop()

    def test_process_job_matches_thread_job(self, tmp_path):
        server = JobServer(tmp_path / "state", port=0, workers=1,
                           execution="process", job_workers=2).start_background()
        try:
            _, submitted = post(server.url + "/jobs", SPEC)
            status = wait_terminal(server.url, submitted["id"])
            assert status["state"] == "done"
            assert status["cells_done"] == status["cells_total"] == 3
            _, served = get(f"{server.url}/jobs/{submitted['id']}/records")
        finally:
            server.stop()
        clean = run_spec(SPEC, sink=JsonlSink(tmp_path / "clean.jsonl"))[0]
        for obj, record in zip(served["records"], clean.records):
            expected = {k: v for k, v in record.items() if k != "seconds"}
            got = {k: v for k, v in obj["record"].items() if k != "seconds"}
            assert got == expected

    def test_pool_worker_sigkill_is_contained(self, tmp_path, monkeypatch):
        # A SIGKILLed pool worker is the pool's problem, not the job's: the
        # crash is contained, the cell re-dispatched, the job still `done`.
        plan = FaultPlan((Fault(site="cell", op="kill", match={"n": 120},
                                once="server-pool-kill"),),
                         marker_dir=str(tmp_path))
        monkeypatch.setenv(faults.ENV_VAR, plan.to_json())
        server = JobServer(tmp_path / "state", port=0, workers=1,
                           execution="process", job_workers=2).start_background()
        try:
            _, submitted = post(server.url + "/jobs", SPEC)
            status = wait_terminal(server.url, submitted["id"])
        finally:
            server.stop()
            monkeypatch.delenv(faults.ENV_VAR)
        assert status["state"] == "done"
        assert status["cells_done"] == 3

    def test_kill_restart_recovery_in_process_mode(self, tmp_path):
        state_dir = tmp_path / "state"
        plan = FaultPlan((Fault(site="server-cell", op="raise",
                                exception="SystemExit", message="simulated kill",
                                match={"done": 2}, once="proc-kill"),),
                         marker_dir=str(tmp_path))
        faults.install(plan)
        try:
            first = JobServer(state_dir, port=0, workers=1, reap_interval=None,
                              execution="process", job_workers=2).start_background()
            _, submitted = post(first.url + "/jobs", SPEC)
            job_id = submitted["id"]
            deadline = time.time() + 120
            while "proc-kill" not in faults.fired_names():
                assert time.time() < deadline, "injected kill never fired"
                time.sleep(0.05)
            time.sleep(0.3)
            first.stop(abort=True)
        finally:
            faults.clear()

        assert JobStore(state_dir).load(job_id).state == "running"
        second = JobServer(state_dir, port=0, workers=1, execution="process",
                           job_workers=2).start_background()
        try:
            status = wait_terminal(second.url, job_id)
            assert status["state"] == "done"
            assert status["cells_done"] == status["cells_total"] == 3
            assert status["attempts"] == 2
        finally:
            second.stop()
