"""Tests for the baseline algorithms."""

import numpy as np
import pytest

from helpers import make_input_coloring
from repro.congest import generators
from repro.core import baselines
from repro.verify.coloring import assert_proper_coloring


class TestGreedySequential:
    def test_delta_plus_one_colors(self):
        g = generators.random_regular(70, 6, seed=2)
        res = baselines.greedy_sequential(g)
        assert_proper_coloring(g, res.colors, max_colors=g.max_degree + 1)
        assert res.rounds == g.n

    def test_custom_order(self):
        g = generators.ring(8)
        res = baselines.greedy_sequential(g, order=np.arange(7, -1, -1))
        assert_proper_coloring(g, res.colors)


class TestLubyRandomized:
    def test_proper_and_within_palette(self):
        g = generators.random_regular(80, 6, seed=3)
        res = baselines.luby_randomized_coloring(g, seed=3)
        assert_proper_coloring(g, res.colors, max_colors=g.max_degree + 1)

    def test_reproducible(self):
        g = generators.gnp(50, 0.1, seed=1)
        a = baselines.luby_randomized_coloring(g, seed=4)
        b = baselines.luby_randomized_coloring(g, seed=4)
        assert np.array_equal(a.colors, b.colors)
        assert a.rounds == b.rounds

    def test_round_count_logarithmic_in_practice(self):
        g = generators.random_regular(200, 8, seed=5)
        res = baselines.luby_randomized_coloring(g, seed=5)
        assert res.rounds <= 30

    def test_larger_palette(self):
        g = generators.complete_graph(6)
        res = baselines.luby_randomized_coloring(g, palette_size=12, seed=1)
        assert_proper_coloring(g, res.colors, max_colors=12)

    def test_palette_too_small(self):
        g = generators.complete_graph(5)
        with pytest.raises(ValueError):
            baselines.luby_randomized_coloring(g, palette_size=3)

    def test_empty_graph(self):
        g = generators.empty_graph(0)
        res = baselines.luby_randomized_coloring(g)
        assert res.colors.size == 0


class TestLocallyIterativeBEG18:
    def test_full_reduction_to_delta_plus_one(self):
        g = generators.random_regular(80, 8, seed=7)
        colors, m = make_input_coloring(g, seed=7)
        res = baselines.locally_iterative_beg18(g, colors, m)
        assert_proper_coloring(g, res.colors, max_colors=g.max_degree + 1)
        # O(Delta) + O(Delta) rounds overall for the two stages
        assert res.rounds <= 40 * g.max_degree

    def test_stage1_only(self):
        g = generators.random_regular(60, 6, seed=8)
        colors, m = make_input_coloring(g, seed=8)
        res = baselines.locally_iterative_beg18(g, colors, m, reduce_to_delta_plus_one=False)
        assert_proper_coloring(g, res.colors)
        assert res.color_space_size <= 16 * g.max_degree

    def test_metadata_breakdown(self):
        g = generators.random_regular(40, 4, seed=9)
        colors, m = make_input_coloring(g, seed=9)
        res = baselines.locally_iterative_beg18(g, colors, m)
        md = res.metadata
        assert md["stage1_rounds"] + md["stage2_rounds"] == res.rounds
