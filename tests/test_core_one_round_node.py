"""The distributed Lemma 4.1 implementation must match the array implementation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.congest import generators
from repro.congest.ids import random_proper_coloring
from repro.core.one_round import one_round_color_reduction, required_input_colors
from repro.core.one_round_node import run_one_round_reduction_distributed
from repro.verify.coloring import assert_proper_coloring


def workload(delta: int, k: int, n: int = 60, seed: int = 0):
    m = required_input_colors(delta, k)
    graph = generators.random_regular(n + ((n * delta) % 2), delta, seed=seed)
    colors, m = random_proper_coloring(graph, num_colors=m, seed=seed)
    return graph, colors, m


class TestDistributedLemma41:
    @pytest.mark.parametrize("delta,k", [(4, 1), (4, 3), (6, 4), (8, 5)])
    def test_matches_array_implementation(self, delta, k):
        graph, colors, m = workload(delta, k, seed=delta + k)
        dist = run_one_round_reduction_distributed(graph, colors, m, k=k, delta=delta)
        array = one_round_color_reduction(graph, colors, m, k=k, delta=delta)
        assert np.array_equal(dist.colors, array.colors)
        assert dist.rounds == 1

    def test_proper_and_within_budget(self):
        graph, colors, m = workload(8, 5, seed=9)
        res = run_one_round_reduction_distributed(graph, colors, m, k=5, delta=8)
        assert_proper_coloring(graph, res.colors, max_colors=m - 5)

    def test_single_congest_message_per_node(self):
        graph, colors, m = workload(6, 4, seed=3)
        res = run_one_round_reduction_distributed(graph, colors, m, k=4, delta=6)
        # one broadcast of the O(log m)-bit input color per node, nothing else
        assert res.metadata["total_messages"] == 2 * graph.num_edges
        assert res.metadata["max_message_bits"] <= 2 * int(np.log2(m)) + 8

    def test_parameter_validation(self):
        graph, colors, m = workload(6, 2, seed=1)
        with pytest.raises(ValueError):
            run_one_round_reduction_distributed(graph, colors, m, k=5, delta=6)
        with pytest.raises(ValueError):
            run_one_round_reduction_distributed(graph, colors, m=6, k=2, delta=6,
                                                validate_input=False)

    @settings(max_examples=15, deadline=None)
    @given(
        delta=st.integers(min_value=3, max_value=9),
        k_frac=st.floats(min_value=0.0, max_value=1.0),
        seed=st.integers(min_value=0, max_value=300),
    )
    def test_property_equivalence(self, delta, k_frac, seed):
        upper = min(delta - 1, (delta + 3) // 2)
        k = max(1, int(round(1 + k_frac * (upper - 1))))
        graph, colors, m = workload(delta, k, n=30, seed=seed)
        dist = run_one_round_reduction_distributed(graph, colors, m, k=k, delta=delta)
        array = one_round_color_reduction(graph, colors, m, k=k, delta=delta)
        assert np.array_equal(dist.colors, array.colors)
