"""Spec round-trip tests: Problem / Run / JobSpec <-> dict <-> JSON, lossless."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.registry import algorithm_names, get_algorithm
from repro.api.spec import (
    SCHEMA_VERSION,
    JobSpec,
    Problem,
    Run,
    SpecError,
    canonical_json,
    spec_hash,
)
from repro.congest import generators
from repro.engine.batch import GraphSpec

GOLDEN = json.loads(
    (__import__("pathlib").Path(__file__).parent / "golden" / "batch_records.json").read_text()
)


def roundtrip(obj):
    """dict -> object -> JSON -> object; assert every hop is lossless."""
    cls = type(obj)
    via_dict = cls.from_dict(obj.to_dict())
    assert via_dict == obj
    via_json = cls.from_json(obj.to_json())
    assert via_json == obj
    assert via_json.to_dict() == obj.to_dict()
    return via_json


class TestProblemRoundTrip:
    def test_graph_spec_problem(self):
        problem = Problem(graph=GraphSpec("gnp", 50, 4, 7))
        assert roundtrip(problem).graph == GraphSpec("gnp", 50, 4, 7)

    def test_live_graph_not_serializable(self):
        problem = Problem(graph=generators.ring(8))
        assert not problem.is_serializable
        with pytest.raises(SpecError, match="live Graph"):
            problem.to_dict()

    def test_unknown_input_coloring_rejected(self):
        with pytest.raises(SpecError, match="input_coloring"):
            Problem(graph=GraphSpec("ring", 10, 2, 0), input_coloring="rainbow")

    def test_unknown_fields_rejected(self):
        with pytest.raises(SpecError, match="unknown"):
            Problem.from_dict({"graph": {"family": "ring", "n": 10, "delta": 2}, "extra": 1})

    def test_schema_version_enforced(self):
        good = Problem(graph=GraphSpec("ring", 10, 2, 0)).to_dict()
        assert good["schema"] == SCHEMA_VERSION
        with pytest.raises(SpecError, match="schema"):
            Problem.from_dict({**good, "schema": SCHEMA_VERSION + 1})
        with pytest.raises(SpecError, match="schema"):
            Problem.from_dict({**good, "schema": 0})


class TestRunRoundTrip:
    @pytest.mark.parametrize("algorithm", sorted(GOLDEN["task_params"]))
    def test_every_registered_algorithm_roundtrips(self, algorithm):
        # the golden params are the canonical exercise of each schema
        run = Run(algorithm=algorithm, params=GOLDEN["task_params"][algorithm],
                  backend="reference", workers=2, seed=3, parity_check=True)
        back = roundtrip(run)
        assert back.params == GOLDEN["task_params"][algorithm]
        assert (back.backend, back.workers, back.seed, back.parity_check) == \
            ("reference", 2, 3, True)

    def test_golden_params_cover_registry(self):
        assert set(GOLDEN["task_params"]) == set(algorithm_names())

    @settings(max_examples=50, deadline=None)
    @given(
        params=st.dictionaries(
            st.text(st.characters(min_codepoint=97, max_codepoint=122), min_size=1, max_size=8),
            st.one_of(st.integers(-1000, 1000), st.booleans(),
                      st.floats(allow_nan=False, allow_infinity=False, width=32),
                      st.text(max_size=12)),
            max_size=4,
        ),
        backend=st.sampled_from(["array", "reference"]),
        workers=st.integers(1, 8),
        seed=st.one_of(st.none(), st.integers(0, 2 ** 31)),
        parity=st.booleans(),
    )
    def test_property_json_roundtrip(self, params, backend, workers, seed, parity):
        # Run serialization is lossless for any JSON-scalar param dict
        # (validation against a schema happens at solve time, not here).
        run = Run(algorithm="x", params=params, backend=backend, workers=workers,
                  seed=seed, parity_check=parity)
        assert Run.from_json(run.to_json()) == run

    def test_defaults(self):
        run = Run.from_dict({"algorithm": "kdelta"})
        assert run == Run(algorithm="kdelta")
        assert (run.backend, run.workers, run.seed, run.parity_check) == ("array", 1, None, False)

    def test_invalid_runs_rejected(self):
        with pytest.raises(SpecError):
            Run(algorithm="")
        with pytest.raises(SpecError):
            Run(algorithm="kdelta", workers=0)
        with pytest.raises(SpecError, match="missing 'algorithm'"):
            Run.from_dict({"backend": "array"})

    def test_unknown_backend_rejected_with_typed_error(self):
        from repro.engine import UnknownBackendError, available_backends

        with pytest.raises(UnknownBackendError, match="Run.backend") as excinfo:
            Run(algorithm="kdelta", backend="bogus")
        assert excinfo.value.backend == "bogus"
        assert excinfo.value.available == available_backends()
        with pytest.raises(SpecError):
            Run(algorithm="kdelta", backend="")

    def test_jit_backend_accepted(self):
        run = roundtrip(Run(algorithm="kdelta", backend="jit"))
        assert run.backend == "jit"


class TestJobSpecRoundTrip:
    def job(self, **overrides):
        kwargs = dict(
            run=Run(algorithm="kdelta", backend="array"),
            problems=(Problem(graph=GraphSpec("random_regular", 40, 4, 0)),
                      Problem(graph=GraphSpec("gnp", 40, 4, 1))),
            params_grid=({"k": 1}, {"k": 2}),
        )
        kwargs.update(overrides)
        return JobSpec(**kwargs)

    def test_roundtrip(self):
        roundtrip(self.job())
        roundtrip(self.job(params_grid=None))

    def test_single_problem_form_accepted(self):
        job = JobSpec.from_dict({
            "problem": {"graph": {"family": "ring", "n": 12, "delta": 2}},
            "run": {"algorithm": "delta_plus_one"},
        })
        assert len(job.problems) == 1
        assert job.cells() == [GraphSpec("ring", 12, 2, 0)]

    def test_effective_grid_merges_run_params(self):
        job = self.job(run=Run(algorithm="ruling_set", params={"r": 3}),
                       params_grid=({"baseline": True}, {}))
        assert job.effective_grid() == [{"r": 3, "baseline": True}, {"r": 3}]

    def test_run_seed_overrides_cells(self):
        job = self.job(run=Run(algorithm="kdelta", seed=9))
        assert [c.seed for c in job.cells()] == [9, 9]

    def test_empty_problems_rejected(self):
        with pytest.raises(SpecError, match="at least one problem"):
            JobSpec(run=Run(algorithm="kdelta"), problems=())

    def test_both_problem_forms_rejected(self):
        with pytest.raises(SpecError, match="not both"):
            JobSpec.from_dict({
                "problem": {"graph": {"family": "ring", "n": 12, "delta": 2}},
                "problems": [],
                "run": {"algorithm": "kdelta"},
            })


class TestSpecHash:
    def test_stable_under_key_order(self):
        a = {"run": {"algorithm": "kdelta"}, "schema": 1}
        b = {"schema": 1, "run": {"algorithm": "kdelta"}}
        assert spec_hash(a) == spec_hash(b)
        assert canonical_json(a) == canonical_json(b)

    def test_object_and_dict_agree(self):
        job = JobSpec.single(Problem(graph=GraphSpec("ring", 12, 2, 0)),
                             Run(algorithm="delta_plus_one"))
        assert spec_hash(job) == spec_hash(job.to_dict())

    def test_different_specs_differ(self):
        p = Problem(graph=GraphSpec("ring", 12, 2, 0))
        a = JobSpec.single(p, Run(algorithm="delta_plus_one"))
        b = JobSpec.single(p, Run(algorithm="kdelta"))
        assert spec_hash(a) != spec_hash(b)


class TestLiveGraphHashing:
    """Regression: ``spec_hash`` over a Problem holding a live Graph used to
    die inside ``to_dict`` (SpecError: not serializable), making dedupe over
    programmatic submissions undefined.  Live graphs now hash canonically via
    the content of their CSR triplet."""

    def test_fingerprint_is_content_based(self):
        from repro.api.spec import graph_fingerprint

        a = generators.random_regular(60, 4, seed=7)
        b = generators.random_regular(60, 4, seed=7)  # same content, new object
        c = generators.random_regular(60, 4, seed=8)
        assert graph_fingerprint(a) == graph_fingerprint(b)
        assert graph_fingerprint(a) != graph_fingerprint(c)
        assert len(graph_fingerprint(a)) == 16

    def test_fingerprint_survives_shared_memory_round_trip(self):
        from repro.api.spec import graph_fingerprint
        from repro.congest.graph import Graph
        from repro.congest.shared import release

        graph = generators.random_regular(60, 4, seed=3)
        handle = graph.to_shared()
        try:
            attached = Graph.from_shared(handle)
            assert graph_fingerprint(attached) == graph_fingerprint(graph)
        finally:
            handle.close()
            release(handle.name)

    def test_fingerprint_rejects_non_graphs(self):
        from repro.api.spec import graph_fingerprint

        with pytest.raises(SpecError, match="expects a Graph"):
            graph_fingerprint({"n": 3})

    def test_spec_hash_over_live_graph_problem(self):
        live = Problem(graph=generators.ring(24))
        assert not live.is_serializable
        digest = spec_hash(live)  # no raise — the regression
        assert digest == spec_hash(Problem(graph=generators.ring(24)))
        assert digest != spec_hash(Problem(graph=generators.ring(26)))
        # canonical dict marks the graph as live and embeds the fingerprint
        doc = live.canonical_dict()
        assert doc["graph"]["live"] is True and "csr_sha256" in doc["graph"]

    def test_spec_hash_over_live_graph_jobspec(self):
        run = Run(algorithm="delta_plus_one")
        a = JobSpec.single(Problem(graph=generators.ring(24)), run)
        b = JobSpec.single(Problem(graph=generators.ring(24)), run)
        assert spec_hash(a) == spec_hash(b)

    def test_live_and_spec_described_problems_never_collide(self):
        live = Problem(graph=generators.ring(24))
        described = Problem(graph=GraphSpec("ring", 24, 2, 0))
        assert spec_hash(live) != spec_hash(described)

    def test_to_dict_still_refuses_live_graphs(self):
        # hashing is canonical; *serialization* is still an explicit error
        with pytest.raises(SpecError, match="live Graph"):
            Problem(graph=generators.ring(8)).to_dict()
        with pytest.raises(SpecError, match="live Graph"):
            JobSpec.single(Problem(graph=generators.ring(8)),
                           Run(algorithm="kdelta")).to_dict()


class TestJobStatus:
    def make(self, **overrides):
        from repro.api.spec import JobStatus

        base = dict(id="ab12", spec={"run": {"algorithm": "kdelta"}})
        base.update(overrides)
        return JobStatus(**base)

    def test_round_trip(self):
        from repro.api.spec import JobStatus

        status = self.make(state="running", cells_total=4, cells_done=2,
                           backend_tier="jit:numba", submitted_at=12.5, attempts=1)
        assert JobStatus.from_json(status.to_json()) == status

    def test_terminal_states(self):
        from repro.api.spec import JOB_STATES

        assert JOB_STATES == ("queued", "running", "done", "failed")
        for state, terminal in (("queued", False), ("running", False),
                                ("done", True), ("failed", True)):
            assert self.make(state=state).terminal is terminal

    def test_unknown_state_rejected(self):
        with pytest.raises(SpecError, match="unknown job state"):
            self.make(state="paused")

    def test_missing_fields_rejected(self):
        from repro.api.spec import JobStatus

        with pytest.raises(SpecError, match="missing"):
            JobStatus.from_dict({"state": "queued"})


class TestExperimentSpecs:
    def test_all_experiments_expressed_and_roundtrip(self):
        from repro.analysis.experiments import experiment_specs

        specs = experiment_specs()
        # every experiment E1..E10 appears (E5/E9 as split entries)
        covered = {name.split("_")[0] for name in specs}
        assert covered == {f"E{i}" for i in range(1, 11)}
        for name, job in specs.items():
            back = JobSpec.from_json(job.to_json())
            assert back == job, name
            assert spec_hash(back) == spec_hash(job), name

    def test_saved_spec_files_match_generator(self):
        # the committed specs/ directory is exactly what the generator writes
        import pathlib

        from repro.analysis.experiments import experiment_specs

        spec_dir = pathlib.Path(__file__).parent.parent / "specs"
        specs = experiment_specs()
        for name, job in specs.items():
            path = spec_dir / f"{name}.json"
            assert path.exists(), f"missing specs/{name}.json — run " \
                                  "scripts/generate_experiment_specs.py"
            assert JobSpec.from_dict(json.loads(path.read_text())) == job, name
