"""The jit backend: resolution, parity, threading, and the fallback path.

Three layers of coverage:

* **Resolution** — ``backend="jit"`` resolves through the registry, describes
  itself (tier, threads, versions), and unknown backends fail with the typed
  :class:`UnknownBackendError` everywhere (registry, reductions, Run specs).
* **Parity** — property tests pin the jit engine to the array backend across
  the composed pipelines, whichever kernel tier resolved.  The plain-Python
  provider (the *exact* source the numba tier compiles) is parity-tested
  separately so the numba kernels' logic is verified even where numba is not
  installed; the C tier is exercised whenever a compiler is present.
* **Fallback** — with numba unimportable and the C tier disabled the engine
  degrades to the array backend with a single :class:`RuntimeWarning` per
  process and bit-identical results.
"""

import sys
import warnings

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from helpers import make_input_coloring
from repro.congest import generators
from repro.core import pipelines
from repro.core.kernels_jit import (
    get_provider,
    python_provider,
    requested_thread_cap,
    reset_provider_cache,
    run_mother_jit,
)
from repro.core.reduce import (
    kuhn_wattenhofer_reduction,
    remove_color_class_reduction,
)
from repro.engine import (
    BatchRunner,
    GraphSpec,
    JitEngine,
    UnknownBackendError,
    available_backends,
    describe_backends,
    get_engine,
)
from repro.engine import jit as jit_module
from repro.verify.coloring import assert_proper_coloring


@pytest.fixture
def pristine_provider():
    """Restore the process-wide provider cache and warning flag after a test
    that monkeypatches the resolution environment."""
    yield
    reset_provider_cache()
    jit_module._reset_fallback_warning()


def random_graph(family: str, n: int, arg: float, seed: int):
    if family == "gnp":
        return generators.gnp(n, min(1.0, max(0.02, arg)), seed=seed)
    if family == "tree":
        return generators.random_tree(n, seed=seed)
    degree = max(1, min(n - 1, int(arg * 10)))
    return generators.random_regular(n + ((n * degree) % 2), degree, seed=seed)


def assert_coloring_parity(a, b):
    assert np.array_equal(a.colors, b.colors)
    assert a.rounds == b.rounds
    assert a.color_space_size == b.color_space_size
    if a.parts is not None and b.parts is not None:
        assert np.array_equal(a.parts, b.parts)


# --------------------------------------------------------------------------- #
# Resolution and introspection
# --------------------------------------------------------------------------- #


class TestJitResolution:
    def test_registered(self):
        assert "jit" in available_backends()
        engine = get_engine("jit")
        assert isinstance(engine, JitEngine)
        assert engine.name == "jit"

    def test_unknown_backend_is_typed(self):
        with pytest.raises(UnknownBackendError) as excinfo:
            get_engine("gpu")
        assert excinfo.value.backend == "gpu"
        assert excinfo.value.available == available_backends()
        assert "jit" in str(excinfo.value)

    def test_unknown_backend_is_a_value_error(self):
        # Pre-existing `except ValueError` call sites keep working.
        with pytest.raises(ValueError):
            get_engine("gpu")

    def test_reduction_dispatchers_raise_the_same_type(self, ring12):
        colors = np.arange(12)
        with pytest.raises(UnknownBackendError, match="remove_color_class_reduction"):
            remove_color_class_reduction(ring12, colors, backend="gpu")
        with pytest.raises(UnknownBackendError, match="kuhn_wattenhofer_reduction"):
            kuhn_wattenhofer_reduction(ring12, colors, 12, backend="gpu")

    def test_describe_backends_covers_jit(self):
        infos = {info["backend"]: info for info in describe_backends()}
        assert set(infos) == set(available_backends())
        jit_info = infos["jit"]
        assert jit_info["implementation"] == "JitEngine"
        assert "numpy" in jit_info["versions"]
        assert isinstance(jit_info["available"], bool)
        if jit_info["available"]:
            assert jit_info["kernel"] in ("numba", "cc")
            assert jit_info["threads"] >= 1
        else:
            assert jit_info["fallback"] == "array"

    def test_warmup_is_idempotent(self):
        engine = JitEngine()
        engine.warmup()
        engine.warmup()
        assert engine.num_threads >= 1

    def test_thread_cap_env(self, monkeypatch, pristine_provider):
        monkeypatch.setenv("REPRO_NUM_THREADS", "1")
        assert requested_thread_cap() == 1
        reset_provider_cache()
        provider = get_provider()
        if provider is not None:
            assert provider.threads == 1

    def test_thread_cap_invalid_is_ignored(self, monkeypatch):
        monkeypatch.setenv("REPRO_NUM_THREADS", "lots")
        assert requested_thread_cap() is None


# --------------------------------------------------------------------------- #
# Parity: jit engine vs array, whichever kernel tier resolved
# --------------------------------------------------------------------------- #


class TestJitEngineParity:
    @settings(max_examples=20, deadline=None)
    @given(
        family=st.sampled_from(["gnp", "regular", "tree"]),
        n=st.integers(min_value=4, max_value=50),
        arg=st.floats(min_value=0.05, max_value=0.6),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_delta_plus_one_property_parity(self, family, n, arg, seed):
        graph = random_graph(family, n, arg, seed)
        a = pipelines.delta_plus_one_coloring(graph, seed=seed, backend="array")
        b = pipelines.delta_plus_one_coloring(graph, seed=seed, backend="jit")
        assert_coloring_parity(a, b)
        assert b.metadata["backend"] == "jit"
        assert_proper_coloring(graph, b.colors, max_colors=max(1, graph.max_degree) + 1)

    @settings(max_examples=15, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=60),
        p=st.floats(min_value=0.05, max_value=0.5),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_reductions_property_parity(self, n, p, seed):
        graph = generators.gnp(n, p, seed=seed)
        colors, m = make_input_coloring(graph, seed=seed)
        a = remove_color_class_reduction(graph, colors, backend="array")
        b = remove_color_class_reduction(graph, colors, backend="jit")
        assert np.array_equal(a.colors, b.colors)
        assert a.rounds == b.rounds
        ka = kuhn_wattenhofer_reduction(graph, colors, m, backend="array")
        kb = kuhn_wattenhofer_reduction(graph, colors, m, backend="jit")
        assert np.array_equal(ka.colors, kb.colors)
        assert ka.rounds == kb.rounds

    def test_engine_primitives_on_zoo(self, small_graph_zoo):
        arr = get_engine("array")
        jit = get_engine("jit")
        for graph in small_graph_zoo:
            colors, m = make_input_coloring(graph, seed=5)
            assert_coloring_parity(
                arr.run_mother(graph, colors, m, d=0, k=1),
                jit.run_mother(graph, colors, m, d=0, k=1),
            )
            assert_coloring_parity(
                arr.remove_color_class(graph, colors),
                jit.remove_color_class(graph, colors),
            )
            assert_coloring_parity(
                arr.kuhn_wattenhofer(graph, colors, m),
                jit.kuhn_wattenhofer(graph, colors, m),
            )

    def test_batch_runner_with_reference_parity_check(self):
        result = BatchRunner(backend="jit", parity_check=True).run(
            "delta_plus_one", [GraphSpec("random_regular", 200, 6, seed=1)]
        )
        records = list(result)
        assert len(records) == 1
        assert records[0]["backend"] == "jit"

    def test_solve_api_accepts_jit(self):
        from repro.api.solve import solve
        from repro.api.spec import Problem, Run

        problem = Problem(graph=GraphSpec("random_regular", 120, 6, seed=0))
        report_a = solve(problem, Run(algorithm="delta_plus_one", backend="array"))
        report_j = solve(problem, Run(algorithm="delta_plus_one", backend="jit"))
        strip = lambda rec: {k: v for k, v in rec.items() if k not in ("seconds", "backend")}
        assert strip(report_j.record) == strip(report_a.record)


# --------------------------------------------------------------------------- #
# Parity of the raw kernel tiers (python = the numba source, cc = the C port)
# --------------------------------------------------------------------------- #


class TestKernelTierParity:
    @settings(max_examples=10, deadline=None)
    @given(
        n=st.integers(min_value=4, max_value=40),
        p=st.floats(min_value=0.1, max_value=0.5),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_python_tier_mother_parity(self, n, p, seed):
        # python_provider executes the exact functions the numba tier
        # compiles, so this validates the numba kernels' logic without numba.
        graph = generators.gnp(n, p, seed=seed)
        colors, m = make_input_coloring(graph, seed=seed)
        a = get_engine("array").run_mother(graph, colors, m, d=0, k=1)
        b = run_mother_jit(graph, colors, m, d=0, k=1, kernels=python_provider())
        assert_coloring_parity(a, b)
        assert b.metadata["kernel"] == "python"

    def test_python_tier_reduction_parity(self, petersen):
        colors, m = make_input_coloring(petersen, seed=9)
        kernels = python_provider()
        a = remove_color_class_reduction(petersen, colors, backend="array")
        b = remove_color_class_reduction(petersen, colors, backend="jit", kernels=kernels)
        assert np.array_equal(a.colors, b.colors) and a.rounds == b.rounds
        ka = kuhn_wattenhofer_reduction(petersen, colors, m, backend="array")
        kb = kuhn_wattenhofer_reduction(petersen, colors, m, backend="jit", kernels=kernels)
        assert np.array_equal(ka.colors, kb.colors) and ka.rounds == kb.rounds

    def test_cc_tier_when_compiler_present(self):
        from repro.core.kernels_cc import cc_provider, find_compiler

        if find_compiler() is None:
            pytest.skip("no C compiler on this machine")
        provider = cc_provider()
        if provider is None:
            pytest.skip("C tier failed to build on this machine")
        assert provider.kind == "cc"
        graph = generators.random_regular(300, 6, seed=4)
        colors, m = make_input_coloring(graph, seed=4)
        a = get_engine("array").run_mother(graph, colors, m, d=0, k=1)
        b = run_mother_jit(graph, colors, m, d=0, k=1, kernels=provider)
        assert_coloring_parity(a, b)

    def test_numba_tier_when_numba_present(self):
        pytest.importorskip("numba")
        reset_provider_cache()
        try:
            provider = get_provider()
            assert provider is not None and provider.kind == "numba"
            graph = generators.random_regular(300, 6, seed=4)
            colors, m = make_input_coloring(graph, seed=4)
            a = get_engine("array").run_mother(graph, colors, m, d=0, k=1)
            b = run_mother_jit(graph, colors, m, d=0, k=1, kernels=provider)
            assert_coloring_parity(a, b)
        finally:
            reset_provider_cache()


# --------------------------------------------------------------------------- #
# The fallback path: no compiled tier at all
# --------------------------------------------------------------------------- #


class TestFallback:
    def _force_fallback(self, monkeypatch):
        # `import numba` raises with None in sys.modules, and the C tier is
        # disabled by env — exactly a machine with neither tier.
        monkeypatch.setitem(sys.modules, "numba", None)
        monkeypatch.setenv("REPRO_JIT_DISABLE", "cc")
        reset_provider_cache()
        jit_module._reset_fallback_warning()

    def test_degrades_to_array_with_single_warning(self, monkeypatch, pristine_provider):
        self._force_fallback(monkeypatch)
        graph = generators.random_regular(200, 6, seed=3)
        engine = JitEngine()
        with pytest.warns(RuntimeWarning, match="falling back to the array backend"):
            result = pipelines.delta_plus_one_coloring(graph, seed=3, backend=engine)
        expected = pipelines.delta_plus_one_coloring(graph, seed=3, backend="array")
        assert_coloring_parity(expected, result)

        # The warning is per-process, not per-engine: a second engine (and a
        # second call) stays silent.
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            again = JitEngine()
            result2 = pipelines.delta_plus_one_coloring(graph, seed=3, backend=again)
            assert not again.available
            assert again.provider_kind is None
        assert_coloring_parity(expected, result2)

    def test_fallback_describe_and_primitives(self, monkeypatch, pristine_provider):
        self._force_fallback(monkeypatch)
        engine = JitEngine()
        with pytest.warns(RuntimeWarning):
            info = engine.describe()
        assert info["available"] is False
        assert info["fallback"] == "array"
        assert info["kernel"] is None
        graph = generators.gnp(40, 0.2, seed=1)
        colors, m = make_input_coloring(graph, seed=1)
        arr = get_engine("array")
        assert_coloring_parity(
            arr.run_mother(graph, colors, m), engine.run_mother(graph, colors, m)
        )
        assert_coloring_parity(
            arr.remove_color_class(graph, colors), engine.remove_color_class(graph, colors)
        )
        assert_coloring_parity(
            arr.kuhn_wattenhofer(graph, colors, m), engine.kuhn_wattenhofer(graph, colors, m)
        )

    def test_disable_env_forces_fallback_without_monkeypatching_imports(
        self, monkeypatch, pristine_provider
    ):
        monkeypatch.setenv("REPRO_JIT_DISABLE", "numba,cc")
        reset_provider_cache()
        assert get_provider() is None

    def test_active_tier_names_the_fallback(self, monkeypatch, pristine_provider):
        # The queryable per-job answer to the once-per-process warning: a
        # long-running server surfaces this in every manifest and /healthz.
        self._force_fallback(monkeypatch)
        engine = JitEngine()
        with pytest.warns(RuntimeWarning):
            assert engine.active_tier() == "jit:fallback-array"

    def test_active_tier_names_the_compiled_tier(self):
        engine = JitEngine()
        if engine.available:
            assert engine.active_tier() == f"jit:{engine.provider_kind}"
        assert get_engine("array").active_tier() == "array"
        assert get_engine("reference").active_tier() == "reference"
