"""Tests for the BatchRunner: grids, caching, records, parity checking."""

import numpy as np
import pytest

from repro.api.registry import algorithm_names
from repro.engine import BatchRunner, GraphSpec, ParityError, get_engine
from repro.engine.batch import Workload


class TestGrid:
    def test_cross_product(self):
        cells = BatchRunner.grid(("gnp", "ring"), (20, 30), 4, seeds=(0, 1))
        assert len(cells) == 2 * 2 * 1 * 2
        assert all(isinstance(c, GraphSpec) for c in cells)
        assert {c.family for c in cells} == {"gnp", "ring"}

    def test_scalars_accepted(self):
        cells = BatchRunner.grid("gnp", 20, 4)
        assert cells == [GraphSpec("gnp", 20, 4, 0)]


class TestCaching:
    def test_graph_and_workload_cached(self):
        runner = BatchRunner(backend="array")
        spec = GraphSpec("random_regular", 40, 4, 0)
        g1 = runner.graph(spec)
        g2 = runner.graph(spec)
        assert g1 is g2
        w1 = runner.workload(spec)
        w2 = runner.workload(spec)
        assert w1 is w2
        assert w1.graph is g1

    def test_workload_coloring_is_proper_delta4(self):
        runner = BatchRunner()
        w = runner.workload(GraphSpec("gnp", 50, 6, 3))
        assert w.m >= w.eff_delta + 1
        # proper: no monochromatic edge
        src = np.repeat(np.arange(w.graph.n), w.graph.degrees)
        assert not np.any(w.input_colors[src] == w.input_colors[w.graph.indices])


class TestRun:
    def test_records_are_tidy(self):
        runner = BatchRunner(backend="array")
        cells = BatchRunner.grid("random_regular", 40, (4, 6), seeds=(0, 1))
        result = runner.run("kdelta", cells, params_grid=[{"k": 1}, {"k": 2}])
        assert len(result) == 8
        for rec in result:
            assert rec["backend"] == "array"
            assert rec["seconds"] >= 0.0
            assert rec["rounds"] >= 1
            assert not any(key.startswith("_") for key in rec)
        assert set(result.column("k")) == {1, 2}

    def test_every_named_task_runs(self):
        runner = BatchRunner(backend="array")
        spec = GraphSpec("random_regular", 30, 4, 0)
        params = {
            "outdegree": {"beta": 1},
            "defective_one_round": {"d": 1},
            "defective": {"d": 1},
            "theorem13": {"epsilon": 0.5},
            "corollary14": {"k": 2},
            "ruling_set": {"r": 2},
            "kdelta": {"k": 2},
            "one_round_tightness": {"k": 3, "m": 12},
            "baseline": {"algorithm": "greedy"},
        }
        for name in algorithm_names():
            rec = runner.run_cell(name, spec, params=params.get(name))
            assert rec["rounds"] >= 0, name

    def test_preloaded_graph_honored_serial_and_parallel(self):
        # preload_graph pins a live graph under a spec; both the serial path
        # and the parallel shared-memory publish must use it, never regenerate
        # from the family name.
        from repro.congest import generators

        spec = GraphSpec("random_regular", 40, 4, 0)
        for workers in (1, 2):
            runner = BatchRunner(backend="array", workers=workers)
            runner.preload_graph(spec, generators.ring(40))
            result = runner.run("kdelta", [spec, GraphSpec("gnp", 40, 4, 1)],
                                params_grid=[{"k": 1}, {"k": 2}])
            # the ring (Delta=2), not a regenerated 4-regular graph
            assert result.records[0]["Delta"] == 2, workers
            assert result.records[1]["Delta"] == 2, workers

    def test_custom_callable_task(self):
        def task(w: Workload, engine, scale: int = 1):
            return {"value": w.graph.n * scale, "_colors": np.zeros(w.graph.n, dtype=np.int64)}

        runner = BatchRunner(backend="array", parity_check=True)
        rec = runner.run_cell(task, GraphSpec("ring", 12, 2, 0), params={"scale": 3})
        assert rec["value"] == 36

    def test_unknown_task_rejected(self):
        runner = BatchRunner()
        with pytest.raises(KeyError):
            runner.run_cell("no_such_task", GraphSpec("ring", 10, 2, 0))

    def test_to_table(self):
        runner = BatchRunner(backend="array")
        result = runner.run("kdelta", BatchRunner.grid("gnp", 30, 4, seeds=(0, 1)),
                            params_grid=[{"k": 1}])
        table = result.to_table("demo", ["family", "n", "seed", "rounds", "colors used"])
        rendered = table.render()
        assert "demo" in rendered and "colors used" in rendered
        assert len(table.rows) == 2


class TestParity:
    def test_parity_check_passes_on_honest_backends(self):
        runner = BatchRunner(backend="array", parity_check=True)
        result = runner.run("delta_plus_one", BatchRunner.grid("gnp", 30, 5, seeds=(0, 1)))
        assert len(result) == 2

    def test_parity_check_catches_lying_backend(self):
        class LyingArray(type(get_engine("array"))):
            name = "array"

            def run_mother(self, graph, input_colors, m, **kwargs):
                result = super().run_mother(graph, input_colors, m, **kwargs)
                result.colors = result.colors + result.color_space_size  # shift: still proper
                return result

        runner = BatchRunner(backend=LyingArray(), parity_check=True)
        with pytest.raises(ParityError):
            runner.run_cell("kdelta", GraphSpec("gnp", 25, 4, 0), params={"k": 1})

    def test_parity_compares_scalar_fields(self):
        calls = []

        def flaky(w: Workload, engine, **params):
            calls.append(engine.name)
            return {"rounds": len(calls)}  # differs between the two runs

        runner = BatchRunner(backend="array", parity_check=True)
        with pytest.raises(ParityError):
            runner.run_cell(flaky, GraphSpec("ring", 10, 2, 0))
