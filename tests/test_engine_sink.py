"""Tests for the streaming result sinks (JSONL/CSV), manifests and resume."""

import json

import numpy as np
import pytest

from repro.engine import BatchRunner, CsvSink, GraphSpec, JsonlSink, SinkError, open_sink
from repro.engine.sink import RunManifest, cell_id, cell_key, grid_hash, task_name


def manifest(**overrides) -> RunManifest:
    base = dict(task="kdelta", backend="array", grid_hash="abc123", cells=4,
                parity_check=False, version="1.2.0")
    base.update(overrides)
    return RunManifest(**base)


RECORDS = [
    {"family": "gnp", "n": 30, "Delta": 4, "seed": 0, "rounds": 2, "seconds": 0.25,
     "proper": True},
    {"family": "gnp", "n": 30, "Delta": 4, "seed": 1, "rounds": 1, "seconds": 0.125,
     "proper": False},
]


class TestCellIdentity:
    def test_cell_key_is_param_order_independent(self):
        spec = GraphSpec("gnp", 30, 4, 1)
        assert cell_key("kdelta", spec, {"k": 1, "d": 2}) == cell_key(
            "kdelta", spec, {"d": 2, "k": 1}
        )

    def test_cell_key_distinguishes_cells(self):
        spec = GraphSpec("gnp", 30, 4, 1)
        keys = {
            cell_key("kdelta", spec, {"k": 1}),
            cell_key("kdelta", spec, {"k": 2}),
            cell_key("linial", spec, {"k": 1}),
            cell_key("kdelta", GraphSpec("gnp", 30, 4, 2), {"k": 1}),
        }
        assert len(keys) == 4

    def test_cell_key_accepts_numpy_params(self):
        spec = GraphSpec("gnp", 30, 4, 1)
        assert cell_key("kdelta", spec, {"k": np.int64(3)}) == cell_key(
            "kdelta", spec, {"k": 3}
        )

    def test_task_name_of_callable(self):
        from helpers import scaled_n_task

        assert task_name(scaled_n_task) == "helpers:scaled_n_task"
        assert task_name("kdelta") == "kdelta"

    def test_cell_id_and_grid_hash(self):
        key = cell_key("kdelta", GraphSpec("gnp", 30, 4, 1), {})
        assert len(cell_id(key)) == 16
        assert grid_hash([key, "other"]) != grid_hash(["other", key])  # order matters


class TestJsonlSink:
    def test_round_trip_preserves_types(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with JsonlSink(path) as sink:
            sink.start(manifest())
            sink.write("c1", RECORDS[0])
            sink.write("c2", RECORDS[1])
        assert sink.written == 2
        with JsonlSink(path, resume=True) as resumed:
            resumed.start(manifest())
            assert resumed.completed == {"c1": RECORDS[0], "c2": RECORDS[1]}
            assert resumed.completed["c1"]["rounds"] == 2  # int stays int
            assert resumed.completed["c1"]["seconds"] == 0.25  # float stays float
            assert resumed.completed["c1"]["proper"] is True  # bool stays bool

    def test_numpy_scalars_serialised(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with JsonlSink(path) as sink:
            sink.start(manifest())
            sink.write("c1", {"rounds": np.int64(3), "seconds": np.float64(0.5)})
        lines = path.read_text().splitlines()
        assert json.loads(lines[1])["record"] == {"rounds": 3, "seconds": 0.5}

    def test_first_line_is_manifest(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with JsonlSink(path) as sink:
            sink.start(manifest())
        head = json.loads(path.read_text().splitlines()[0])
        assert RunManifest.from_dict(head["manifest"]) == manifest()

    def test_torn_final_line_dropped_on_resume(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with JsonlSink(path) as sink:
            sink.start(manifest())
            sink.write("c1", RECORDS[0])
        with path.open("a") as f:  # a write the dying run never finished
            f.write('{"cell": "c2", "rec')
        with JsonlSink(path, resume=True) as resumed:
            resumed.start(manifest())
            assert set(resumed.completed) == {"c1"}
        # the torn tail is gone from the file itself
        assert len(path.read_text().splitlines()) == 2

    def test_malformed_interior_line_rejected(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with JsonlSink(path) as sink:
            sink.start(manifest())
            sink.write("c1", RECORDS[0])
        with path.open("a") as f:
            f.write("{not json}\n")
        with pytest.raises(SinkError, match="malformed JSONL"):
            JsonlSink(path, resume=True).start(manifest())

    def test_wrong_shape_line_rejected(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with JsonlSink(path) as sink:
            sink.start(manifest())
        with path.open("a") as f:
            f.write('{"no-cell-field": 1}\n')
        with pytest.raises(SinkError, match="not a"):
            JsonlSink(path, resume=True).start(manifest())

    def test_missing_manifest_rejected(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text('{"cell": "c1", "record": {}}\n')
        with pytest.raises(SinkError, match="manifest"):
            JsonlSink(path, resume=True).start(manifest())

    def test_resume_refuses_different_sweep(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with JsonlSink(path) as sink:
            sink.start(manifest())
        for other in (manifest(grid_hash="ffff"), manifest(task="linial"),
                      manifest(backend="reference"), manifest(parity_check=True)):
            with pytest.raises(SinkError, match="different sweep"):
                JsonlSink(path, resume=True).start(other)

    def test_refused_resume_never_mutates_the_file(self, tmp_path):
        # Even with a torn tail, a file that fails the manifest check must be
        # left exactly as found — reject first, truncate only afterwards.
        path = tmp_path / "run.jsonl"
        with JsonlSink(path) as sink:
            sink.start(manifest())
            sink.write("c1", RECORDS[0])
        with path.open("a") as f:
            f.write('{"cell": "c2", "rec')  # torn tail
        before = path.read_text()
        with pytest.raises(SinkError, match="different sweep"):
            JsonlSink(path, resume=True).start(manifest(task="linial"))
        assert path.read_text() == before

    def test_resume_tolerates_version_bump(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with JsonlSink(path) as sink:
            sink.start(manifest(version="1.1.0"))
        JsonlSink(path, resume=True).start(manifest(version="1.2.0"))  # no raise

    def test_resume_of_missing_file_starts_fresh(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with JsonlSink(path, resume=True) as sink:
            sink.start(manifest())
            assert sink.completed == {}
        assert path.exists()


class TestCsvSink:
    def test_round_trip_with_sidecar_manifest(self, tmp_path):
        path = tmp_path / "run.csv"
        with CsvSink(path) as sink:
            sink.start(manifest())
            for i, rec in enumerate(RECORDS):
                sink.write(f"c{i}", rec)
        header, *rows = path.read_text().splitlines()
        assert header.startswith("cell,family,n,")
        assert len(rows) == 2
        sidecar = json.loads(sink.manifest_path.read_text())
        assert RunManifest.from_dict(sidecar) == manifest()

    def test_resume_retypes_scalars(self, tmp_path):
        path = tmp_path / "run.csv"
        with CsvSink(path) as sink:
            sink.start(manifest())
            sink.write("c0", RECORDS[0])
        with CsvSink(path, resume=True) as resumed:
            resumed.start(manifest())
            rec = resumed.completed["c0"]
            assert rec["rounds"] == 2 and isinstance(rec["rounds"], int)
            assert rec["seconds"] == 0.25
            assert rec["proper"] is True
            assert rec["family"] == "gnp"

    def test_torn_final_row_dropped_on_resume(self, tmp_path):
        path = tmp_path / "run.csv"
        with CsvSink(path) as sink:
            sink.start(manifest())
            sink.write("c0", RECORDS[0])
        with path.open("a") as f:  # row the dying run never finished
            f.write("c1,gnp,30")
        with CsvSink(path, resume=True) as resumed:
            resumed.start(manifest())
            assert set(resumed.completed) == {"c0"}
            resumed.write("c1", RECORDS[1])
        # the torn tail is gone: the file parses as header + two whole rows
        header, *rows = path.read_text().splitlines()
        assert len(rows) == 2 and rows[1].startswith("c1,")

    def test_row_truncated_inside_last_field_treated_as_torn(self, tmp_path):
        # Field counting alone cannot catch this: the row has every column but
        # its last value was cut mid-write.  The missing newline must flag it.
        path = tmp_path / "run.csv"
        with CsvSink(path) as sink:
            sink.start(manifest())
            sink.write("c0", RECORDS[0])
            sink.write("c1", RECORDS[1])
        text = path.read_text()
        path.write_text(text[:-5])  # chop the tail of the last value + newline
        with CsvSink(path, resume=True) as resumed:
            resumed.start(manifest())
            assert set(resumed.completed) == {"c0"}  # c1 must re-run, not resurface garbled

    def test_malformed_interior_row_rejected(self, tmp_path):
        path = tmp_path / "run.csv"
        with CsvSink(path) as sink:
            sink.start(manifest())
            sink.write("c0", RECORDS[0])
        with path.open("a") as f:
            f.write("c1,only,three\n")  # complete line, wrong field count
        with pytest.raises(SinkError, match="fields"):
            CsvSink(path, resume=True).start(manifest())

    def test_resume_without_sidecar_rejected(self, tmp_path):
        path = tmp_path / "run.csv"
        path.write_text("cell,rounds\nc0,1\n")
        with pytest.raises(SinkError, match="sidecar"):
            CsvSink(path, resume=True).start(manifest())

    def test_unknown_columns_rejected(self, tmp_path):
        path = tmp_path / "run.csv"
        with CsvSink(path) as sink:
            sink.start(manifest())
            sink.write("c0", RECORDS[0])
            with pytest.raises(SinkError, match="not in the CSV header"):
                sink.write("c1", {**RECORDS[1], "surprise": 1})


class TestCsvTypedSchema:
    """Regression: CSV resume used to re-type values heuristically (lossy —
    the string ``"42"`` came back as the int ``42``).  The manifest sidecar
    now carries a per-column type schema making resume an exact inverse."""

    TRICKY = {"label": "42", "flag": "True", "count": 42, "ratio": 1.0,
              "ok": True, "note": "", "extra": None}

    def test_sidecar_records_column_schema(self, tmp_path):
        path = tmp_path / "run.csv"
        with CsvSink(path) as sink:
            sink.start(manifest())
            sink.write("c0", self.TRICKY)
        sidecar = json.loads(sink.manifest_path.read_text())
        assert sidecar["columns"] == {
            "label": "str", "flag": "str", "count": "int", "ratio": "float",
            "ok": "bool", "note": "str", "extra": "none",
        }
        # the schema rides along the manifest, not instead of it
        assert RunManifest.from_dict(sidecar) == manifest()

    def test_resume_round_trip_is_exact(self, tmp_path):
        # the lossy cases: numeric-looking and bool-looking *strings*
        path = tmp_path / "run.csv"
        with CsvSink(path) as sink:
            sink.start(manifest())
            sink.write("c0", self.TRICKY)
        with CsvSink(path, resume=True) as resumed:
            resumed.start(manifest())
            assert resumed.completed["c0"] == self.TRICKY
            rec = resumed.completed["c0"]
            assert rec["label"] == "42" and isinstance(rec["label"], str)
            assert rec["flag"] == "True" and isinstance(rec["flag"], str)
            assert rec["ok"] is True and rec["count"] == 42
            assert rec["note"] == "" and rec["extra"] is None

    def test_resume_round_trips_like_jsonl(self, tmp_path):
        # the same records through both sinks resume to identical dicts
        jsonl, csv_path = tmp_path / "run.jsonl", tmp_path / "run.csv"
        other = {**self.TRICKY, "label": "7", "count": 7, "ok": False}
        for cls, path in ((JsonlSink, jsonl), (CsvSink, csv_path)):
            with cls(path) as sink:
                sink.start(manifest())
                sink.write("c0", self.TRICKY)
                sink.write("c1", other)
        with JsonlSink(jsonl, resume=True) as a, CsvSink(csv_path, resume=True) as b:
            a.start(manifest())
            b.start(manifest())
            assert a.completed == b.completed

    def test_float_column_stays_float(self, tmp_path):
        # 1.0 must not collapse to the int 1 on resume
        path = tmp_path / "run.csv"
        with CsvSink(path) as sink:
            sink.start(manifest())
            sink.write("c0", {"x": 1.0})
        with CsvSink(path, resume=True) as resumed:
            resumed.start(manifest())
            assert isinstance(resumed.completed["c0"]["x"], float)

    def test_numpy_scalars_tag_as_plain_types(self, tmp_path):
        path = tmp_path / "run.csv"
        with CsvSink(path) as sink:
            sink.start(manifest())
            sink.write("c0", {"n": np.int64(3), "t": np.float64(0.5), "p": np.bool_(True)})
        with CsvSink(path, resume=True) as resumed:
            resumed.start(manifest())
            assert resumed.completed["c0"] == {"n": 3, "t": 0.5, "p": True}

    def test_mixed_type_column_rejected(self, tmp_path):
        path = tmp_path / "run.csv"
        with CsvSink(path) as sink:
            sink.start(manifest())
            sink.write("c0", {"x": 1})
            with pytest.raises(SinkError, match="holds int values"):
                sink.write("c1", {"x": "one"})

    def test_newline_in_string_rejected(self, tmp_path):
        # a quoted multi-line field would defeat the torn-tail detector
        path = tmp_path / "run.csv"
        with CsvSink(path) as sink:
            sink.start(manifest())
            with pytest.raises(SinkError, match="newline"):
                sink.write("c0", {"x": "two\nlines"})

    def test_legacy_sidecar_still_resumes(self, tmp_path):
        # files written before the schema (no "columns" key) keep the old
        # best-effort behavior instead of being rejected
        path = tmp_path / "run.csv"
        with CsvSink(path) as sink:
            sink.start(manifest())
            sink.write("c0", RECORDS[0])
        sidecar = json.loads(sink.manifest_path.read_text())
        del sidecar["columns"]
        sink.manifest_path.write_text(json.dumps(sidecar))
        with CsvSink(path, resume=True) as resumed:
            resumed.start(manifest())
            rec = resumed.completed["c0"]
            assert rec["rounds"] == 2 and rec["proper"] is True  # heuristic still works

    def test_schema_header_mismatch_rejected(self, tmp_path):
        path = tmp_path / "run.csv"
        with CsvSink(path) as sink:
            sink.start(manifest())
            sink.write("c0", RECORDS[0])
        sidecar = json.loads(sink.manifest_path.read_text())
        sidecar["columns"] = {"other": "int"}
        sink.manifest_path.write_text(json.dumps(sidecar))
        with pytest.raises(SinkError, match="column schema"):
            CsvSink(path, resume=True).start(manifest())


class TestSinkListeners:
    def test_listener_fires_after_each_durable_write(self, tmp_path):
        seen = []
        with JsonlSink(tmp_path / "run.jsonl") as sink:
            sink.add_listener(lambda cell, record: seen.append((cell, dict(record))))
            sink.start(manifest())
            sink.write("c0", RECORDS[0])
            sink.write("c1", RECORDS[1])
        assert seen == [("c0", RECORDS[0]), ("c1", RECORDS[1])]

    def test_csv_sink_notifies_too(self, tmp_path):
        seen = []
        with CsvSink(tmp_path / "run.csv") as sink:
            sink.add_listener(lambda cell, record: seen.append(cell))
            sink.start(manifest())
            sink.write("c0", RECORDS[0])
        assert seen == ["c0"]


class TestBackendTier:
    def test_runner_manifest_carries_active_tier(self):
        runner = BatchRunner(backend="array")
        cells = BatchRunner.grid("gnp", 30, 4, seeds=(0,))
        assert runner.manifest("kdelta", cells).backend_tier == "array"

    def test_jit_tier_is_kind_or_fallback(self):
        from repro.engine.registry import get_engine

        tier = get_engine("jit").active_tier()
        assert tier in ("jit:numba", "jit:cc", "jit:fallback-array")

    def test_tier_mismatch_does_not_block_resume(self, tmp_path):
        # the tier is provenance, not identity: a restart may resolve a
        # different tier (e.g. numba missing after an env change) and must
        # still resume the same sweep
        path = tmp_path / "run.jsonl"
        with JsonlSink(path) as sink:
            sink.start(manifest(backend_tier="jit:numba"))
            sink.write("c0", RECORDS[0])
        with JsonlSink(path, resume=True) as resumed:
            resumed.start(manifest(backend_tier="jit:fallback-array"))  # no raise
            assert set(resumed.completed) == {"c0"}

    def test_progress_callback_reports_each_cell(self, tmp_path):
        calls = []
        runner = BatchRunner(backend="array")
        cells = BatchRunner.grid("gnp", 30, 4, seeds=(0, 1))
        with JsonlSink(tmp_path / "run.jsonl") as sink:
            runner.run("kdelta", cells, sink=sink,
                       progress=lambda done, total, cell, rec: calls.append((done, total, cell)))
        assert calls[0] == (0, 2, None)  # the resume-baseline call
        assert [c[0] for c in calls[1:]] == [1, 2]
        assert all(c[1] == 2 for c in calls)
        assert all(c[2] is not None for c in calls[1:])

    def test_progress_reports_resumed_cells_up_front(self, tmp_path):
        runner = BatchRunner(backend="array")
        cells = BatchRunner.grid("gnp", 30, 4, seeds=(0, 1))
        path = tmp_path / "run.jsonl"
        with JsonlSink(path) as sink:
            runner.run("kdelta", cells, sink=sink)
        calls = []
        with JsonlSink(path, resume=True) as sink:
            runner.run("kdelta", cells, sink=sink,
                       progress=lambda done, total, cell, rec: calls.append((done, total)))
        assert calls[0] == (2, 2)  # every cell already durable before any work
        assert calls[-1] == (2, 2)


class TestOpenSink:
    def test_suffix_dispatch(self, tmp_path):
        assert isinstance(open_sink(tmp_path / "a.jsonl"), JsonlSink)
        assert isinstance(open_sink(tmp_path / "a.ndjson"), JsonlSink)
        assert isinstance(open_sink(tmp_path / "a.csv"), CsvSink)

    def test_unknown_suffix_rejected(self, tmp_path):
        with pytest.raises(SinkError, match="suffix"):
            open_sink(tmp_path / "a.parquet")


class TestRunnerManifest:
    def test_one_shot_params_grid_iterable(self, tmp_path):
        # A generator params_grid must behave exactly like a list: re-used for
        # every spec, and counted once in the manifest.
        runner = BatchRunner(backend="array")
        cells = BatchRunner.grid("gnp", 30, 4, seeds=(0, 1))
        with JsonlSink(tmp_path / "run.jsonl") as sink:
            result = runner.run("kdelta", cells,
                                params_grid=({"k": k} for k in (1, 2)), sink=sink)
        assert len(result) == 4
        assert sorted((r["seed"], r["k"]) for r in result) == [
            (0, 1), (0, 2), (1, 1), (1, 2)]
        listed = runner.manifest("kdelta", cells, params_grid=[{"k": 1}, {"k": 2}])
        generated = runner.manifest("kdelta", cells,
                                    params_grid=({"k": k} for k in (1, 2)))
        assert generated == listed and generated.cells == 4

    def test_manifest_describes_sweep(self):
        runner = BatchRunner(backend="array", parity_check=True)
        cells = BatchRunner.grid("gnp", 30, 4, seeds=(0, 1))
        m = runner.manifest("kdelta", cells, params_grid=[{"k": 1}, {"k": 2}])
        assert m.task == "kdelta"
        assert m.backend == "array"
        assert m.cells == 4
        assert m.parity_check is True
        # the hash pins the grid: any change to cells or params changes it
        assert m.grid_hash != runner.manifest("kdelta", cells, params_grid=[{"k": 1}]).grid_hash
