"""Unit tests for the graph family generators."""

import numpy as np
import pytest

from repro.congest import generators
from repro.congest.graph import GraphError


class TestDeterministicFamilies:
    def test_path(self):
        g = generators.path(6)
        assert g.num_edges == 5
        assert g.max_degree == 2

    def test_ring(self):
        g = generators.ring(7)
        assert g.num_edges == 7
        assert set(g.degrees.tolist()) == {2}

    def test_ring_too_small(self):
        with pytest.raises(GraphError):
            generators.ring(2)

    def test_complete(self):
        g = generators.complete_graph(6)
        assert g.num_edges == 15
        assert g.max_degree == 5

    def test_complete_bipartite(self):
        g = generators.complete_bipartite(3, 4)
        assert g.num_edges == 12
        assert g.max_degree == 4

    def test_star(self):
        g = generators.star(10)
        assert g.degree(0) == 9
        assert all(g.degree(v) == 1 for v in range(1, 10))

    def test_grid(self):
        g = generators.grid(3, 4)
        assert g.n == 12
        assert g.max_degree == 4
        assert g.num_edges == 3 * 3 + 2 * 4

    def test_torus_regular(self):
        g = generators.torus(4, 5)
        assert set(g.degrees.tolist()) == {4}

    def test_torus_too_small(self):
        with pytest.raises(GraphError):
            generators.torus(2, 5)

    def test_binary_tree(self):
        g = generators.binary_tree(3)
        assert g.n == 15
        assert g.num_edges == 14
        assert g.max_degree == 3

    def test_caterpillar(self):
        g = generators.caterpillar(4, 2)
        assert g.n == 4 + 8
        assert g.num_edges == 3 + 8

    def test_crown(self):
        g = generators.crown(4)
        assert g.n == 8
        assert g.num_edges == 4 * 3
        assert set(g.degrees.tolist()) == {3}  # (n-1)-regular
        for i in range(4):
            assert not g.has_edge(i, 4 + i)  # the removed perfect matching
            for j in range(4):
                if i != j:
                    assert g.has_edge(i, 4 + j)

    def test_crown_too_small(self):
        with pytest.raises(GraphError):
            generators.crown(1)

    def test_empty(self):
        g = generators.empty_graph(5)
        assert g.num_edges == 0

    @pytest.mark.parametrize("n", [0, 1, 2])
    def test_tiny_instances(self, n):
        assert generators.path(n).num_edges == max(n - 1, 0)
        assert generators.star(max(n, 1)).num_edges == max(n - 1, 0)
        assert generators.complete_graph(n).num_edges == n * (n - 1) // 2


class TestRandomFamilies:
    def test_gnp_reproducible(self):
        a = generators.gnp(40, 0.1, seed=5)
        b = generators.gnp(40, 0.1, seed=5)
        assert a == b

    def test_gnp_different_seeds_differ(self):
        a = generators.gnp(40, 0.2, seed=1)
        b = generators.gnp(40, 0.2, seed=2)
        assert a != b

    def test_gnp_extreme_probabilities(self):
        assert generators.gnp(10, 0.0, seed=0).num_edges == 0
        assert generators.gnp(10, 1.0, seed=0).num_edges == 45

    def test_gnp_invalid_probability(self):
        with pytest.raises(GraphError):
            generators.gnp(10, 1.5)

    def test_random_regular_is_regular(self):
        g = generators.random_regular(50, 6, seed=3)
        assert set(g.degrees.tolist()) == {6}

    def test_random_regular_reproducible(self):
        assert generators.random_regular(30, 4, seed=9) == generators.random_regular(30, 4, seed=9)

    def test_random_regular_parity_check(self):
        with pytest.raises(GraphError):
            generators.random_regular(9, 3)

    def test_random_regular_degree_too_large(self):
        with pytest.raises(GraphError):
            generators.random_regular(5, 5)

    def test_random_regular_degree_zero(self):
        assert generators.random_regular(8, 0).num_edges == 0

    def test_random_tree_is_tree(self):
        g = generators.random_tree(30, seed=2)
        assert g.num_edges == 29
        assert len(g.connected_components()) == 1

    def test_random_bipartite_sides(self):
        g = generators.random_bipartite(10, 12, 0.3, seed=4)
        for u, v in g.edges():
            assert (u < 10) != (v < 10)

    def test_power_law_cluster(self):
        g = generators.power_law_cluster(60, 3, seed=1)
        assert g.n == 60
        assert len(g.connected_components()) == 1
        # skewed degrees: max degree well above the attachment parameter
        assert g.max_degree >= 6

    def test_power_law_invalid(self):
        with pytest.raises(GraphError):
            generators.power_law_cluster(10, 0)

    def test_power_law_attach_one(self):
        # attach=1 starts from an edgeless K_1 "clique", exercising the
        # uniform first-draw fallback; the result must still be a single tree.
        g = generators.power_law_cluster(40, 1, seed=3)
        assert g.n == 40
        assert g.num_edges == 39
        assert len(g.connected_components()) == 1
        assert generators.power_law_cluster(40, 1, seed=3) == g

    def test_disjoint_union(self):
        g = generators.disjoint_union(generators.ring(4), generators.ring(5))
        assert g.n == 9
        assert g.num_edges == 9


class TestNamedFamilies:
    @pytest.mark.parametrize("name", sorted(generators.FAMILIES))
    def test_by_name_produces_graph(self, name):
        g = generators.by_name(name, 60, 6, seed=1)
        assert g.n >= 3
        assert g.max_degree >= 1

    def test_by_name_unknown(self):
        with pytest.raises(GraphError):
            generators.by_name("hypercube", 10, 3)


class TestSeedDeterminism:
    """Equal seeds must give *identical* graphs — in-process and across processes.

    The parallel BatchRunner rebuilds every workload inside its worker
    processes and relies on this (see ``repro.engine.parallel``): a graph that
    depended on interpreter state would silently break the serial/parallel
    byte-identity guarantee and the parity oracle.
    """

    @staticmethod
    def _fingerprint(name, n=60, delta=4, seed=11):
        from helpers import graph_fingerprint

        return graph_fingerprint(name, n, delta, seed)

    @pytest.mark.parametrize("name", sorted(generators.FAMILIES))
    def test_equal_seeds_identical_in_process(self, name):
        assert self._fingerprint(name) == self._fingerprint(name)

    def test_equal_seeds_identical_across_spawned_processes(self):
        # ``spawn`` starts pristine interpreters — the strictest determinism
        # check available (fork would inherit the parent's state).
        import multiprocessing

        from helpers import graph_fingerprint

        ctx = multiprocessing.get_context("spawn")
        with ctx.Pool(2) as pool:
            for name in sorted(generators.FAMILIES):
                args = (name, 60, 4, 11)
                child_a = pool.apply(graph_fingerprint, args)
                child_b = pool.apply(graph_fingerprint, args)
                assert child_a == child_b == graph_fingerprint(*args), name

    @pytest.mark.parametrize("name", ["random_regular", "gnp", "tree", "power_law"])
    def test_different_seeds_differ(self, name):
        assert self._fingerprint(name, seed=1) != self._fingerprint(name, seed=2)

    def test_seed_none_means_zero_not_entropy(self):
        # ``None`` must not fall through to NumPy's OS-entropy seeding: that
        # would make "same seed" runs differ across worker processes.
        a = generators.random_tree(40, seed=None)
        b = generators.random_tree(40, seed=0)
        assert np.array_equal(a.indices, b.indices)
        c = generators.random_regular(40, 4, seed=None)
        d = generators.random_regular(40, 4, seed=0)
        assert np.array_equal(c.indices, d.indices)

    def test_numpy_integer_seeds_accepted(self):
        a = generators.random_regular(40, 4, seed=np.int64(9))
        b = generators.random_regular(40, 4, seed=9)
        assert np.array_equal(a.indices, b.indices)

    def test_canonical_rng_stream_depends_only_on_seed(self):
        x = generators.canonical_rng(np.int32(5)).integers(0, 1 << 30, size=8)
        y = generators.canonical_rng(5).integers(0, 1 << 30, size=8)
        assert np.array_equal(x, y)


class TestArrayNativeStreams:
    """The array-native generators and their canonical_rng streams.

    ``gnp``, ``random_bipartite`` and ``random_tree`` consume the stream in
    the same order as the historical per-edge Python loops, so they must equal
    a verbatim replica of the old draw pattern.  ``random_regular`` and
    ``power_law_cluster`` draw in a new (vectorized, still seed-deterministic)
    order; their streams are pinned by checksum here and by the golden record
    suite.
    """

    def test_random_bipartite_stream_matches_legacy_loop(self):
        a, b, p, seed = 13, 9, 0.3, 4
        rng = generators.canonical_rng(seed)
        edges = []
        for i in range(a):  # the historical quadratic append loop, verbatim
            mask = rng.random(b) < p
            for j in np.nonzero(mask)[0]:
                edges.append((i, a + int(j)))
        from repro.congest.graph import Graph

        legacy = Graph(a + b, edges)
        assert generators.random_bipartite(a, b, p, seed=seed) == legacy

    def test_random_tree_stream_matches_legacy_loop(self):
        n, seed = 200, 11
        rng = generators.canonical_rng(seed)
        edges = [(i, int(rng.integers(0, i))) for i in range(1, n)]
        from repro.congest.graph import Graph

        assert generators.random_tree(n, seed=seed) == Graph(n, edges)

    def test_random_bipartite_vectorized_build_is_not_quadratic_shaped(self):
        # sanity on the single nonzero/column_stack build: side sizes where
        # the old per-row loop produced empty rows
        g = generators.random_bipartite(50, 3, 0.9, seed=0)
        assert g.n == 53
        assert all((u < 50) != (v < 50) for u, v in g.edges())

    @pytest.mark.parametrize(
        "name,build,checksum",
        [
            # Pinned streams of the vectorized generators.  A change in either
            # checksum means the seed->graph mapping changed: regenerate the
            # goldens (scripts/generate_golden_records.py) and say so loudly
            # in the commit message.
            ("random_regular", lambda: generators.random_regular(64, 4, seed=5), 2227000247),
            ("power_law", lambda: generators.power_law_cluster(64, 3, seed=5), 112074324),
        ],
    )
    def test_new_streams_pinned(self, name, build, checksum):
        import zlib

        g = build()
        digest = zlib.crc32(g.indptr.tobytes() + g.indices.tobytes())
        assert digest == checksum, (
            f"{name} seed->graph stream changed (crc32 {digest} != pinned {checksum})"
        )
