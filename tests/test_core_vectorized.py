"""The vectorized twin must agree bit-for-bit with the message-passing implementation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from helpers import make_input_coloring
from repro.congest import generators
from repro.core.algorithm1 import run_mother_algorithm
from repro.core.params import MotherParameters
from repro.core.vectorized import evaluate_all_sequences, run_mother_algorithm_vectorized
from repro.core.sequences import build_sequence
from repro.verify.coloring import assert_proper_coloring


class TestSequenceEvaluation:
    def test_matches_scalar_sequences(self):
        params = MotherParameters.derive(m=8 ** 4, delta=8, d=0, k=2)
        colors = np.array([0, 17, 4095, 255])
        table = evaluate_all_sequences(colors, params)
        for row, c in enumerate(colors):
            assert np.array_equal(table[row], build_sequence(int(c), params).values)


class TestEquivalence:
    @pytest.mark.parametrize("d,k", [(0, 1), (0, 3), (0, 64), (2, 1), (2, 4), (5, 2)])
    def test_matches_message_passing(self, random_regular8, d, k):
        colors, m = make_input_coloring(random_regular8, seed=11)
        a = run_mother_algorithm(random_regular8, colors, m, d=d, k=k)
        b = run_mother_algorithm_vectorized(random_regular8, colors, m, d=d, k=k)
        assert np.array_equal(a.colors, b.colors)
        assert np.array_equal(a.parts, b.parts)
        assert a.rounds == b.rounds

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=4, max_value=40),
        p=st.floats(min_value=0.05, max_value=0.5),
        seed=st.integers(min_value=0, max_value=10_000),
        k=st.integers(min_value=1, max_value=8),
        d_frac=st.floats(min_value=0.0, max_value=0.8),
    )
    def test_property_equivalence_random_graphs(self, n, p, seed, k, d_frac):
        graph = generators.gnp(n, p, seed=seed)
        if graph.max_degree < 1:
            return
        d = int(d_frac * (graph.max_degree - 1))
        colors, m = make_input_coloring(graph, seed=seed)
        a = run_mother_algorithm(graph, colors, m, d=d, k=k)
        b = run_mother_algorithm_vectorized(graph, colors, m, d=d, k=k)
        assert np.array_equal(a.colors, b.colors)
        assert np.array_equal(a.parts, b.parts)
        assert a.rounds == b.rounds

    def test_vectorized_orientation_available_on_request(self, petersen):
        colors, m = make_input_coloring(petersen, seed=1)
        res = run_mother_algorithm_vectorized(petersen, colors, m, d=1, k=1, with_orientation=True)
        assert res.orientation is not None

    def test_vectorized_empty_graph(self):
        g = generators.empty_graph(0)
        res = run_mother_algorithm_vectorized(g, np.empty(0, dtype=np.int64), m=16)
        assert res.colors.size == 0

    def test_vectorized_larger_graph_proper(self):
        g = generators.random_regular(400, 10, seed=5)
        colors, m = make_input_coloring(g, seed=5)
        res = run_mother_algorithm_vectorized(g, colors, m, d=0, k=2)
        assert_proper_coloring(g, res.colors, max_colors=res.color_space_size)
