"""Tests for the reductions to Delta + 1 colors."""

import numpy as np
import pytest

from helpers import make_input_coloring
from repro.congest import generators
from repro.core.corollaries import kdelta_coloring
from repro.core.reduce import kuhn_wattenhofer_reduction, remove_color_class_reduction
from repro.verify.coloring import assert_proper_coloring


@pytest.fixture(scope="module")
def colored_graph():
    graph = generators.random_regular(90, 6, seed=21)
    colors, m = make_input_coloring(graph, seed=21)
    start = kdelta_coloring(graph, colors, m, k=1, backend="array")
    return graph, start


class TestRemoveColorClass:
    def test_reduces_to_delta_plus_one(self, colored_graph):
        graph, start = colored_graph
        res = remove_color_class_reduction(graph, start.colors)
        assert_proper_coloring(graph, res.colors, max_colors=graph.max_degree + 1)
        assert res.colors.max() <= graph.max_degree

    def test_round_count_matches_removed_classes(self, colored_graph):
        graph, start = colored_graph
        above = np.unique(start.colors[start.colors >= graph.max_degree + 1]).size
        res = remove_color_class_reduction(graph, start.colors)
        # one round per color value >= Delta+1 present at the start, possibly a
        # few more if recoloring re-populates a previously cleared value
        assert res.rounds >= above

    def test_custom_target(self, colored_graph):
        graph, start = colored_graph
        target = graph.max_degree + 5
        res = remove_color_class_reduction(graph, start.colors, target_colors=target)
        assert res.colors.max() < target
        assert_proper_coloring(graph, res.colors)

    def test_target_below_delta_plus_one_rejected(self, colored_graph):
        graph, start = colored_graph
        with pytest.raises(ValueError):
            remove_color_class_reduction(graph, start.colors, target_colors=graph.max_degree)

    def test_noop_when_already_small(self):
        g = generators.ring(8)
        colors = np.array([0, 1, 2] * 2 + [0, 1])
        res = remove_color_class_reduction(g, colors)
        assert res.rounds == 0
        assert np.array_equal(res.colors, colors)


class TestKuhnWattenhofer:
    def test_reduces_to_delta_plus_one(self, colored_graph):
        graph, start = colored_graph
        res = kuhn_wattenhofer_reduction(graph, start.colors, start.color_space_size)
        assert_proper_coloring(graph, res.colors, max_colors=graph.max_degree + 1)
        assert res.colors.max() <= graph.max_degree

    def test_round_bound_delta_log(self, colored_graph):
        graph, start = colored_graph
        delta = graph.max_degree
        res = kuhn_wattenhofer_reduction(graph, start.colors, start.color_space_size)
        phases = res.metadata["phases"]
        assert res.rounds <= phases * (delta + 1)
        assert phases <= int(np.ceil(np.log2(max(2, start.color_space_size / (delta + 1))))) + 1

    def test_from_large_color_space(self):
        graph = generators.random_regular(60, 4, seed=5)
        colors = np.random.default_rng(5).permutation(60).astype(np.int64) * 3
        res = kuhn_wattenhofer_reduction(graph, colors, m=200)
        assert_proper_coloring(graph, res.colors, max_colors=graph.max_degree + 1)

    def test_rejects_colors_outside_space(self):
        g = generators.ring(6)
        with pytest.raises(ValueError):
            kuhn_wattenhofer_reduction(g, np.array([0, 1, 2, 3, 4, 10]), m=6)

    def test_rejects_small_target(self):
        g = generators.complete_graph(4)
        with pytest.raises(ValueError):
            kuhn_wattenhofer_reduction(g, np.arange(4), m=4, target_colors=2)

    def test_noop_when_space_already_small(self):
        g = generators.ring(9)
        colors = np.arange(9) % 3
        res = kuhn_wattenhofer_reduction(g, colors, m=3)
        assert res.rounds == 0
        assert np.array_equal(res.colors, colors)
