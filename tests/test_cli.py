"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main

BATCH_GRID = ["batch", "--task", "kdelta", "--family", "random_regular", "gnp",
              "-n", "50", "--delta", "4", "--seeds", "2", "--param", "k=1"]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_family_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["color", "--family", "hypercube"])

    def test_defaults(self):
        args = build_parser().parse_args(["color"])
        assert args.nodes == 200
        assert args.delta == 8
        assert args.k is None

    def test_batch_defaults(self):
        args = build_parser().parse_args(["batch"])
        assert args.workers == 1
        assert args.output is None
        assert args.resume is False


class TestCommands:
    def test_color_pipeline(self, capsys):
        assert main(["color", "-n", "80", "--delta", "6", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "verified proper" in out
        assert "(Delta+1) pipeline" in out

    def test_color_trade_off(self, capsys):
        assert main(["color", "-n", "80", "--delta", "6", "--k", "4", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "k=4" in out

    def test_defective(self, capsys):
        assert main(["defective", "-n", "60", "--delta", "8", "--d", "2", "--seed", "2"]) == 0
        assert "2-defective" in capsys.readouterr().out

    def test_outdegree(self, capsys):
        assert main(["defective", "-n", "60", "--delta", "8", "--d", "2", "--outdegree",
                     "--seed", "2"]) == 0
        assert "beta-outdegree" in capsys.readouterr().out

    def test_ruling_set(self, capsys):
        assert main(["ruling-set", "-n", "60", "--delta", "8", "--r", "2", "--seed", "3"]) == 0
        assert "ruling set" in capsys.readouterr().out

    def test_ruling_set_baseline(self, capsys):
        assert main(["ruling-set", "-n", "60", "--delta", "8", "--r", "2", "--baseline",
                     "--seed", "3"]) == 0
        assert "SEW13" in capsys.readouterr().out

    def test_experiment(self, capsys):
        assert main(["experiment", "E9"]) == 0
        assert "Theorem 1.6" in capsys.readouterr().out

    @pytest.mark.parametrize("family", ["ring", "grid", "tree", "gnp", "power_law"])
    def test_color_all_families(self, family, capsys):
        assert main(["color", "--family", family, "-n", "50", "--delta", "4", "--seed", "4"]) == 0
        assert "verified proper" in capsys.readouterr().out


class TestBatchCommand:
    def test_batch_serial(self, capsys):
        assert main(BATCH_GRID) == 0
        out = capsys.readouterr().out
        assert "cells=4" in out and "total wall-clock" in out

    def test_batch_workers(self, capsys):
        assert main(BATCH_GRID + ["--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "workers=2" in out and "across 2 workers" in out

    def test_batch_output_jsonl(self, tmp_path, capsys):
        out_file = tmp_path / "run.jsonl"
        assert main(BATCH_GRID + ["--output", str(out_file)]) == 0
        assert "wrote 4 record(s)" in capsys.readouterr().out
        lines = out_file.read_text().splitlines()
        assert len(lines) == 5  # manifest + 4 records
        manifest = json.loads(lines[0])["manifest"]
        assert manifest["task"] == "kdelta" and manifest["cells"] == 4

    def test_batch_output_csv(self, tmp_path, capsys):
        out_file = tmp_path / "run.csv"
        assert main(BATCH_GRID + ["--output", str(out_file)]) == 0
        header, *rows = out_file.read_text().splitlines()
        assert header.startswith("cell,family,")
        assert len(rows) == 4
        assert out_file.with_name("run.csv.manifest.json").exists()

    def test_batch_resume_after_partial_run(self, tmp_path, capsys):
        out_file = tmp_path / "run.jsonl"
        assert main(BATCH_GRID + ["--output", str(out_file)]) == 0
        full = out_file.read_text().splitlines()
        # Simulate a sweep killed after two cells, mid-write of the third.
        out_file.write_text("\n".join(full[:3]) + "\n" + full[3][:20])
        capsys.readouterr()
        assert main(BATCH_GRID + ["--workers", "2", "--output", str(out_file),
                                  "--resume"]) == 0
        out = capsys.readouterr().out
        assert "wrote 2 record(s)" in out and "2 cell(s) resumed" in out
        resumed = out_file.read_text().splitlines()
        # identical stream modulo the wall-clock field
        def cells_of(lines):
            return [json.loads(line)["cell"] for line in lines[1:]]
        assert cells_of(resumed) == cells_of(full)

    def test_batch_resume_requires_output(self):
        with pytest.raises(SystemExit):
            main(BATCH_GRID + ["--resume"])

    def test_batch_resume_rejects_malformed_jsonl(self, tmp_path, capsys):
        out_file = tmp_path / "run.jsonl"
        assert main(BATCH_GRID + ["--output", str(out_file)]) == 0
        with out_file.open("a") as f:
            f.write("{definitely not json}\n")
        assert main(BATCH_GRID + ["--output", str(out_file), "--resume"]) == 1
        assert "malformed JSONL" in capsys.readouterr().err

    def test_batch_resume_rejects_different_sweep(self, tmp_path, capsys):
        out_file = tmp_path / "run.jsonl"
        assert main(BATCH_GRID + ["--output", str(out_file)]) == 0
        different = [a if a != "kdelta" else "linial" for a in BATCH_GRID]
        assert main(different + ["--output", str(out_file), "--resume"]) == 1
        assert "different sweep" in capsys.readouterr().err

    def test_batch_unknown_output_format(self, capsys):
        assert main(BATCH_GRID + ["--output", "run.parquet"]) == 1
        assert "suffix" in capsys.readouterr().err

    def test_batch_parallel_parity_checked(self, capsys):
        assert main(BATCH_GRID + ["--workers", "2", "--parity-check"]) == 0
        assert "parity-checked" in capsys.readouterr().out

    def test_experiment_workers(self, capsys):
        assert main(["experiment", "E1", "--workers", "2"]) == 0
        assert "Corollary 1.2(1)" in capsys.readouterr().out
