"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_family_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["color", "--family", "hypercube"])

    def test_defaults(self):
        args = build_parser().parse_args(["color"])
        assert args.nodes == 200
        assert args.delta == 8
        assert args.k is None


class TestCommands:
    def test_color_pipeline(self, capsys):
        assert main(["color", "-n", "80", "--delta", "6", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "verified proper" in out
        assert "(Delta+1) pipeline" in out

    def test_color_trade_off(self, capsys):
        assert main(["color", "-n", "80", "--delta", "6", "--k", "4", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "k=4" in out

    def test_defective(self, capsys):
        assert main(["defective", "-n", "60", "--delta", "8", "--d", "2", "--seed", "2"]) == 0
        assert "2-defective" in capsys.readouterr().out

    def test_outdegree(self, capsys):
        assert main(["defective", "-n", "60", "--delta", "8", "--d", "2", "--outdegree",
                     "--seed", "2"]) == 0
        assert "beta-outdegree" in capsys.readouterr().out

    def test_ruling_set(self, capsys):
        assert main(["ruling-set", "-n", "60", "--delta", "8", "--r", "2", "--seed", "3"]) == 0
        assert "ruling set" in capsys.readouterr().out

    def test_ruling_set_baseline(self, capsys):
        assert main(["ruling-set", "-n", "60", "--delta", "8", "--r", "2", "--baseline",
                     "--seed", "3"]) == 0
        assert "SEW13" in capsys.readouterr().out

    def test_experiment(self, capsys):
        assert main(["experiment", "E9"]) == 0
        assert "Theorem 1.6" in capsys.readouterr().out

    @pytest.mark.parametrize("family", ["ring", "grid", "tree", "gnp", "power_law"])
    def test_color_all_families(self, family, capsys):
        assert main(["color", "--family", family, "-n", "50", "--delta", "4", "--seed", "4"]) == 0
        assert "verified proper" in capsys.readouterr().out
