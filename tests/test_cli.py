"""Tests for the command-line interface (generated from the algorithm registry)."""

import json

import pytest

from repro.api.registry import algorithm_names, get_algorithm
from repro.api.spec import JobSpec, spec_hash
from repro.cli import build_parser, main

BATCH_GRID = ["batch", "--task", "kdelta", "--family", "random_regular", "gnp",
              "-n", "50", "--delta", "4", "--seeds", "2", "--param", "k=1"]


def write_spec(tmp_path, name="run.json", **overrides):
    document = {
        "schema": 1,
        "problems": [
            {"graph": {"family": "random_regular", "n": 50, "delta": 4, "seed": 0}},
            {"graph": {"family": "gnp", "n": 50, "delta": 4, "seed": 1}},
        ],
        "run": {"algorithm": "kdelta", "backend": "array"},
        "params_grid": [{"k": 1}, {"k": 2}],
    }
    document.update(overrides)
    path = tmp_path / name
    path.write_text(json.dumps(document))
    return path, document


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_family_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["color", "delta_plus_one", "--family", "hypercube"])

    def test_color_requires_algorithm(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["color"])

    def test_color_subcommands_generated_from_registry(self):
        # every registered algorithm parses as a color subcommand with its
        # schema-generated param flags — zero hand-written CLI branches.
        for name in algorithm_names():
            flags = []
            for param in get_algorithm(name).params:
                if param.required:
                    flags += [f"--{param.name}", "3"] if param.type is not str \
                        else [f"--{param.name}", param.choices[0]]
            args = build_parser().parse_args(["color", name, *flags])
            assert args.algorithm_name == name
            assert args.nodes == 200 and args.delta == 8  # shared graph args

    def test_color_param_defaults_come_from_schema(self):
        args = build_parser().parse_args(["color", "kdelta"])
        assert args.k == 1
        args = build_parser().parse_args(["color", "ruling_set", "--r", "3"])
        assert args.r == 3 and args.baseline is False

    def test_serve_defaults_and_overrides(self):
        args = build_parser().parse_args(["serve"])
        assert (args.host, args.port, args.workers) == ("127.0.0.1", 8765, 2)
        assert args.state_dir == "repro-jobs"
        args = build_parser().parse_args(
            ["serve", "--port", "0", "--workers", "4", "--state-dir", "/tmp/j"])
        assert args.port == 0 and args.workers == 4 and args.state_dir == "/tmp/j"

    def test_batch_task_choices_come_from_registry(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["batch", "--task", "nonexistent"])
        args = build_parser().parse_args(["batch", "--task", "one_round_tightness"])
        assert args.task == "one_round_tightness"

    def test_batch_defaults(self):
        args = build_parser().parse_args(["batch"])
        assert args.workers == 1
        assert args.output is None
        assert args.resume is False


class TestListAlgorithms:
    def test_table_covers_registry(self, capsys):
        assert main(["list-algorithms"]) == 0
        out = capsys.readouterr().out
        for name in algorithm_names():
            assert name in out
        assert "guarantee" in out

    def test_json_listing(self, capsys):
        assert main(["list-algorithms", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert {entry["name"] for entry in payload} == set(algorithm_names())
        kdelta = next(e for e in payload if e["name"] == "kdelta")
        assert kdelta["params"][0] == {
            "name": "k", "type": "int", "required": False, "default": 1,
            "help": kdelta["params"][0]["help"],
        }


class TestListBackends:
    def test_table_covers_registry(self, capsys):
        from repro.engine import available_backends

        assert main(["list-backends"]) == 0
        out = capsys.readouterr().out
        for name in available_backends():
            assert name in out
        assert "REPRO_NUM_THREADS" in out

    def test_json_listing(self, capsys):
        from repro.engine import available_backends

        assert main(["list-backends", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [entry["backend"] for entry in payload] == available_backends()
        jit = next(e for e in payload if e["backend"] == "jit")
        assert {"available", "versions", "threads"} <= set(jit)

    def test_backend_flag_accepts_jit(self):
        args = build_parser().parse_args(["color", "delta_plus_one", "--backend", "jit"])
        assert args.backend == "jit"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["color", "delta_plus_one", "--backend", "gpu"])


class TestColorCommand:
    def test_delta_plus_one(self, capsys):
        assert main(["color", "delta_plus_one", "-n", "80", "--delta", "6", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "verified" in out and "guarantee:" in out
        assert "delta_plus_one [array]" in out

    def test_kdelta_param_flag(self, capsys):
        assert main(["color", "kdelta", "-n", "80", "--delta", "6", "--k", "4",
                     "--seed", "1"]) == 0
        assert "kdelta [array]" in capsys.readouterr().out

    def test_defective(self, capsys):
        assert main(["color", "defective_one_round", "-n", "60", "--delta", "8",
                     "--d", "2", "--seed", "2"]) == 0
        assert "max defect" in capsys.readouterr().out

    def test_outdegree(self, capsys):
        assert main(["color", "outdegree", "-n", "60", "--delta", "8", "--beta", "2",
                     "--seed", "2"]) == 0
        assert "max outdegree" in capsys.readouterr().out

    def test_ruling_set_baseline(self, capsys):
        assert main(["color", "ruling_set", "-n", "60", "--delta", "8", "--r", "2",
                     "--baseline", "--seed", "3"]) == 0
        assert "set size" in capsys.readouterr().out

    def test_parity_check(self, capsys):
        assert main(["color", "linial_reduction", "-n", "50", "--delta", "4",
                     "--parity-check"]) == 0
        assert "reference-parity checked" in capsys.readouterr().out

    def test_experiment(self, capsys):
        assert main(["experiment", "E9"]) == 0
        assert "Theorem 1.6" in capsys.readouterr().out

    @pytest.mark.parametrize("family", ["ring", "grid", "tree", "gnp", "power_law"])
    def test_color_all_families(self, family, capsys):
        assert main(["color", "delta_plus_one", "--family", family, "-n", "50",
                     "--delta", "4", "--seed", "4"]) == 0
        assert "verified" in capsys.readouterr().out


class TestRunSpecCommand:
    def test_run_spec(self, tmp_path, capsys):
        path, document = write_spec(tmp_path)
        assert main(["run", "--spec", str(path)]) == 0
        out = capsys.readouterr().out
        assert "cells=4" in out
        # the hash pins the *canonical* (normalized) form of the document
        assert f"spec hash: {spec_hash(JobSpec.from_dict(document))}" in out

    def test_run_spec_manifest_embeds_spec_hash(self, tmp_path, capsys):
        path, document = write_spec(tmp_path)
        out_file = tmp_path / "replay.jsonl"
        assert main(["run", "--spec", str(path), "--workers", "2",
                     "--output", str(out_file)]) == 0
        manifest = json.loads(out_file.read_text().splitlines()[0])["manifest"]
        assert manifest["spec_hash"] == spec_hash(JobSpec.from_dict(document))
        assert manifest["task"] == "kdelta" and manifest["cells"] == 4

    def test_run_spec_missing_file(self, tmp_path, capsys):
        assert main(["run", "--spec", str(tmp_path / "nope.json")]) == 1
        assert "not found" in capsys.readouterr().err

    def test_run_spec_malformed_json(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        assert main(["run", "--spec", str(path)]) == 1
        assert "not valid JSON" in capsys.readouterr().err

    def test_run_spec_unknown_algorithm(self, tmp_path, capsys):
        path, _ = write_spec(tmp_path, run={"algorithm": "no_such", "backend": "array"},
                             params_grid=None)
        assert main(["run", "--spec", str(path)]) == 1
        assert "unknown algorithm" in capsys.readouterr().err

    def test_run_spec_single_problem_form(self, tmp_path, capsys):
        path = tmp_path / "single.json"
        path.write_text(json.dumps({
            "problem": {"graph": {"family": "ring", "n": 24, "delta": 2, "seed": 0}},
            "run": {"algorithm": "delta_plus_one"},
        }))
        assert main(["run", "--spec", str(path), "--parity-check"]) == 0
        assert "cells=1" in capsys.readouterr().out


class TestBatchCommand:
    def test_batch_serial(self, capsys):
        assert main(BATCH_GRID) == 0
        out = capsys.readouterr().out
        assert "cells=4" in out and "total wall-clock" in out

    def test_batch_workers(self, capsys):
        assert main(BATCH_GRID + ["--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "workers=2" in out and "across 2 workers" in out

    def test_batch_unknown_param_rejected(self, capsys):
        bad = [a if a != "k=1" else "q=1" for a in BATCH_GRID]
        assert main(bad) == 1
        err = capsys.readouterr().err
        assert "unknown parameter" in err and "'kdelta'" in err and "['k']" in err

    def test_batch_ill_typed_param_rejected(self, capsys):
        bad = [a if a != "k=1" else "k=fast" for a in BATCH_GRID]
        assert main(bad) == 1
        assert "expects int" in capsys.readouterr().err

    def test_batch_out_of_range_param_rejected(self, capsys):
        bad = [a if a != "k=1" else "k=0" for a in BATCH_GRID]
        assert main(bad) == 1
        assert ">= 1" in capsys.readouterr().err

    def test_batch_missing_required_param_rejected(self, capsys):
        assert main(["batch", "--task", "one_round_tightness", "-n", "30",
                     "--delta", "4"]) == 1
        assert "required parameter" in capsys.readouterr().err

    def test_batch_output_jsonl(self, tmp_path, capsys):
        out_file = tmp_path / "run.jsonl"
        assert main(BATCH_GRID + ["--output", str(out_file)]) == 0
        assert "wrote 4 record(s)" in capsys.readouterr().out
        lines = out_file.read_text().splitlines()
        assert len(lines) == 5  # manifest + 4 records
        manifest = json.loads(lines[0])["manifest"]
        assert manifest["task"] == "kdelta" and manifest["cells"] == 4

    def test_batch_output_csv(self, tmp_path, capsys):
        out_file = tmp_path / "run.csv"
        assert main(BATCH_GRID + ["--output", str(out_file)]) == 0
        header, *rows = out_file.read_text().splitlines()
        assert header.startswith("cell,family,")
        assert len(rows) == 4
        assert out_file.with_name("run.csv.manifest.json").exists()

    def test_batch_resume_after_partial_run(self, tmp_path, capsys):
        out_file = tmp_path / "run.jsonl"
        assert main(BATCH_GRID + ["--output", str(out_file)]) == 0
        full = out_file.read_text().splitlines()
        # Simulate a sweep killed after two cells, mid-write of the third.
        out_file.write_text("\n".join(full[:3]) + "\n" + full[3][:20])
        capsys.readouterr()
        assert main(BATCH_GRID + ["--workers", "2", "--output", str(out_file),
                                  "--resume"]) == 0
        out = capsys.readouterr().out
        assert "wrote 2 record(s)" in out and "2 cell(s) resumed" in out
        resumed = out_file.read_text().splitlines()
        # identical stream modulo the wall-clock field
        def cells_of(lines):
            return [json.loads(line)["cell"] for line in lines[1:]]
        assert cells_of(resumed) == cells_of(full)

    def test_batch_resume_requires_output(self):
        with pytest.raises(SystemExit):
            main(BATCH_GRID + ["--resume"])

    def test_batch_resume_rejects_malformed_jsonl(self, tmp_path, capsys):
        out_file = tmp_path / "run.jsonl"
        assert main(BATCH_GRID + ["--output", str(out_file)]) == 0
        with out_file.open("a") as f:
            f.write("{definitely not json}\n")
        assert main(BATCH_GRID + ["--output", str(out_file), "--resume"]) == 1
        assert "malformed JSONL" in capsys.readouterr().err

    def test_batch_resume_rejects_different_sweep(self, tmp_path, capsys):
        out_file = tmp_path / "run.jsonl"
        assert main(BATCH_GRID + ["--output", str(out_file)]) == 0
        different = [a if a != "kdelta" else "linial" for a in BATCH_GRID]
        different.remove("--param")
        different.remove("k=1")
        assert main(different + ["--output", str(out_file), "--resume"]) == 1
        assert "different sweep" in capsys.readouterr().err

    def test_batch_unknown_output_format(self, capsys):
        assert main(BATCH_GRID + ["--output", "run.parquet"]) == 1
        assert "suffix" in capsys.readouterr().err

    def test_batch_parallel_parity_checked(self, capsys):
        assert main(BATCH_GRID + ["--workers", "2", "--parity-check"]) == 0
        assert "parity-checked" in capsys.readouterr().out

    def test_experiment_workers(self, capsys):
        assert main(["experiment", "E1", "--workers", "2"]) == 0
        assert "Corollary 1.2(1)" in capsys.readouterr().out
