"""Reference-vs-array parity of the engine layer.

The load-bearing invariant of :mod:`repro.engine`: for every algorithm the two
backends must produce *identical* colors, part indices, and round counts.  The
mother algorithm itself is covered in ``test_core_vectorized.py``; this module
property-tests the composed pipelines — Linial, color-class removal, the full
``(Delta + 1)`` pipeline, and Theorem 1.3 — across random graph families and
seeds.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from helpers import make_input_coloring
from repro.congest import generators
from repro.core import pipelines
from repro.core.linial import linial_coloring
from repro.core.reduce import remove_color_class_reduction
from repro.engine import ArrayEngine, ReferenceEngine, get_engine
from repro.verify.coloring import assert_proper_coloring


def random_graph(family: str, n: int, arg: float, seed: int):
    if family == "gnp":
        return generators.gnp(n, min(1.0, max(0.02, arg)), seed=seed)
    if family == "tree":
        return generators.random_tree(n, seed=seed)
    degree = max(1, min(n - 1, int(arg * 10)))
    return generators.random_regular(n + ((n * degree) % 2), degree, seed=seed)


def assert_coloring_parity(a, b):
    assert np.array_equal(a.colors, b.colors)
    assert a.rounds == b.rounds
    assert a.color_space_size == b.color_space_size
    if a.parts is not None and b.parts is not None:
        assert np.array_equal(a.parts, b.parts)


class TestEngineResolution:
    def test_get_engine_names(self):
        assert isinstance(get_engine("reference"), ReferenceEngine)
        assert isinstance(get_engine("array"), ArrayEngine)

    def test_engine_instances_pass_through(self):
        engine = ArrayEngine()
        assert get_engine(engine) is engine

    def test_unknown_backend(self):
        from repro.engine import EngineError

        with pytest.raises(EngineError):
            get_engine("gpu")

    def test_vectorized_alias_still_selects_array_and_warns(self, petersen):
        colors, m = make_input_coloring(petersen, seed=3)
        with pytest.warns(DeprecationWarning, match="vectorized= flag is deprecated"):
            legacy = pipelines.o_delta_coloring(petersen, colors, m, vectorized=True)
        modern = pipelines.o_delta_coloring(petersen, colors, m, backend="array")
        assert_coloring_parity(legacy, modern)


class TestRemoveColorClassParity:
    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=60),
        p=st.floats(min_value=0.05, max_value=0.5),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_property_parity(self, n, p, seed):
        graph = generators.gnp(n, p, seed=seed)
        colors, m = make_input_coloring(graph, seed=seed)
        # A sparse high-valued proper coloring exercises many removal rounds.
        a = remove_color_class_reduction(graph, colors, backend="reference")
        b = remove_color_class_reduction(graph, colors, backend="array")
        assert np.array_equal(a.colors, b.colors)
        assert a.rounds == b.rounds

    def test_unknown_backend_rejected(self, ring12):
        with pytest.raises(ValueError):
            remove_color_class_reduction(ring12, np.arange(12), backend="gpu")


class TestLinialParity:
    @settings(max_examples=20, deadline=None)
    @given(
        family=st.sampled_from(["gnp", "regular", "tree"]),
        n=st.integers(min_value=4, max_value=50),
        arg=st.floats(min_value=0.05, max_value=0.6),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_property_parity(self, family, n, arg, seed):
        graph = random_graph(family, n, arg, seed)
        a = linial_coloring(graph, seed=seed, backend="reference")
        b = linial_coloring(graph, seed=seed, backend="array")
        assert_coloring_parity(a, b)
        assert_proper_coloring(graph, b.colors)


class TestDeltaPlusOneParity:
    @settings(max_examples=20, deadline=None)
    @given(
        family=st.sampled_from(["gnp", "regular", "tree"]),
        n=st.integers(min_value=4, max_value=50),
        arg=st.floats(min_value=0.05, max_value=0.6),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_property_parity(self, family, n, arg, seed):
        graph = random_graph(family, n, arg, seed)
        a = pipelines.delta_plus_one_coloring(graph, seed=seed, backend="reference")
        b = pipelines.delta_plus_one_coloring(graph, seed=seed, backend="array")
        assert_coloring_parity(a, b)
        assert b.metadata["backend"] == "array"
        assert a.metadata["backend"] == "reference"
        assert a.metadata["linial_rounds"] == b.metadata["linial_rounds"]
        assert a.metadata["mother_rounds"] == b.metadata["mother_rounds"]
        assert a.metadata["reduction_rounds"] == b.metadata["reduction_rounds"]
        # the pipeline's budget is max(1, Delta) + 1 (edgeless graphs still
        # get a 2-color space from the mother algorithm)
        assert_proper_coloring(graph, b.colors, max_colors=max(1, graph.max_degree) + 1)

    def test_small_zoo(self, small_graph_zoo):
        for graph in small_graph_zoo:
            a = pipelines.delta_plus_one_coloring(graph, seed=2, backend="reference")
            b = pipelines.delta_plus_one_coloring(graph, seed=2, backend="array")
            assert_coloring_parity(a, b)


class TestTheorem13Parity:
    @settings(max_examples=12, deadline=None)
    @given(
        n=st.integers(min_value=10, max_value=60),
        p=st.floats(min_value=0.1, max_value=0.5),
        seed=st.integers(min_value=0, max_value=10_000),
        epsilon=st.sampled_from([0.25, 0.5, 0.75]),
    )
    def test_property_parity(self, n, p, seed, epsilon):
        graph = generators.gnp(n, p, seed=seed)
        colors, m = make_input_coloring(graph, seed=seed)
        a = pipelines.theorem13_coloring(graph, colors, m, epsilon=epsilon, backend="reference")
        b = pipelines.theorem13_coloring(graph, colors, m, epsilon=epsilon, backend="array")
        assert_coloring_parity(a, b)
        assert_proper_coloring(graph, b.colors)

    @pytest.mark.parametrize("k", [1, 2, 4])
    def test_corollary14_parity(self, random_regular8, k):
        colors, m = make_input_coloring(random_regular8, seed=7)
        a = pipelines.corollary14_coloring(random_regular8, colors, m, k=k, backend="reference")
        b = pipelines.corollary14_coloring(random_regular8, colors, m, k=k, backend="array")
        assert_coloring_parity(a, b)
