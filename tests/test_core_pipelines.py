"""Tests for the end-to-end pipelines (Delta+1, Theorem 1.3, Corollary 1.4)."""

import numpy as np
import pytest

from helpers import make_input_coloring
from repro.congest import generators
from repro.core import pipelines
from repro.verify.coloring import assert_proper_coloring


class TestDeltaPlusOnePipeline:
    @pytest.mark.parametrize("family,kwargs", [
        ("random_regular", dict(n=100, degree=8, seed=1)),
        ("gnp", dict(n=120, p=0.06, seed=2)),
    ])
    def test_delta_plus_one(self, family, kwargs):
        graph = getattr(generators, family)(**kwargs)
        res = pipelines.delta_plus_one_coloring(graph, seed=1)
        assert_proper_coloring(graph, res.colors, max_colors=graph.max_degree + 1)
        assert res.colors.max() <= graph.max_degree

    def test_round_breakdown_sums(self):
        graph = generators.random_regular(80, 6, seed=4)
        res = pipelines.delta_plus_one_coloring(graph, seed=4)
        md = res.metadata
        assert md["linial_rounds"] + md["mother_rounds"] + md["reduction_rounds"] == res.rounds

    def test_rounds_scale_with_delta_not_n(self):
        small = generators.random_regular(64, 6, seed=5)
        large = generators.random_regular(512, 6, seed=5)
        r_small = pipelines.delta_plus_one_coloring(small, seed=5, backend="array").rounds
        r_large = pipelines.delta_plus_one_coloring(large, seed=5, backend="array").rounds
        # an 8x larger graph with the same Delta should cost at most ~2x the
        # rounds (the dependence on n is only through log* and through how many
        # of the O(Delta) color values actually occur)
        assert r_large <= 2 * r_small + 10

    def test_tree_and_ring(self):
        for graph in (generators.random_tree(60, seed=6), generators.ring(30)):
            res = pipelines.delta_plus_one_coloring(graph, seed=6)
            assert_proper_coloring(graph, res.colors, max_colors=graph.max_degree + 1)


class TestODeltaColoring:
    def test_color_bound(self):
        graph = generators.random_regular(70, 8, seed=3)
        colors, m = make_input_coloring(graph, seed=3)
        res = pipelines.o_delta_coloring(graph, colors, m)
        assert_proper_coloring(graph, res.colors)
        assert res.color_space_size <= 16 * graph.max_degree
        assert "substitution" in res.metadata


class TestTheorem13:
    @pytest.mark.parametrize("epsilon", [0.25, 0.5, 0.75])
    def test_proper_and_color_bound(self, epsilon):
        graph = generators.random_regular(90, 16, seed=8)
        colors, m = make_input_coloring(graph, seed=8)
        res = pipelines.theorem13_coloring(graph, colors, m, epsilon=epsilon, backend="array")
        assert_proper_coloring(graph, res.colors)
        delta = graph.max_degree
        # the O(.) constant: (4f)^2-ish for the defective step times O(d); we
        # only check the asymptotic shape with a generous constant
        assert res.num_colors <= 600 * delta ** (1 + epsilon)

    def test_metadata_records_substitution_and_defect(self):
        graph = generators.random_regular(60, 9, seed=9)
        colors, m = make_input_coloring(graph, seed=9)
        res = pipelines.theorem13_coloring(graph, colors, m, epsilon=0.5)
        assert res.metadata["defect_d"] >= 1
        assert res.metadata["defective_rounds"] >= 1

    def test_degenerate_small_delta(self):
        graph = generators.ring(12)
        colors, m = make_input_coloring(graph, seed=1)
        res = pipelines.theorem13_coloring(graph, colors, m, epsilon=0.5)
        assert_proper_coloring(graph, res.colors)

    def test_invalid_epsilon(self):
        graph = generators.ring(6)
        colors, m = make_input_coloring(graph, seed=1)
        with pytest.raises(ValueError):
            pipelines.theorem13_coloring(graph, colors, m, epsilon=0.0)
        with pytest.raises(ValueError):
            pipelines.theorem13_coloring(graph, colors, m, epsilon=1.5)

    def test_custom_low_degree_coloring_hook(self):
        calls = []

        def custom(sub, sub_colors, sub_m):
            calls.append(sub.n)
            return pipelines.o_delta_coloring(sub, sub_colors, sub_m)

        graph = generators.random_regular(50, 8, seed=10)
        colors, m = make_input_coloring(graph, seed=10)
        res = pipelines.theorem13_coloring(graph, colors, m, epsilon=0.5,
                                           low_degree_coloring=custom)
        assert_proper_coloring(graph, res.colors)
        assert sum(calls) == graph.n  # every vertex colored in exactly one class


class TestCorollary14:
    @pytest.mark.parametrize("k", [1, 2, 4])
    def test_proper(self, k):
        graph = generators.random_regular(60, 9, seed=11)
        colors, m = make_input_coloring(graph, seed=11)
        res = pipelines.corollary14_coloring(graph, colors, m, k=k)
        assert_proper_coloring(graph, res.colors)

    def test_invalid_k(self):
        graph = generators.ring(6)
        colors, m = make_input_coloring(graph, seed=1)
        with pytest.raises(ValueError):
            pipelines.corollary14_coloring(graph, colors, m, k=0)
