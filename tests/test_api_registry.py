"""Tests for the algorithm registry (repro.api.registry)."""

import pytest

from repro.api import registry
from repro.api.registry import (
    AlgorithmError,
    ParameterValueError,
    ParamSpec,
    UnknownAlgorithmError,
    UnknownParameterError,
    algorithm_names,
    algorithm_specs,
    get_algorithm,
    register_algorithm,
    validate_params,
)

#: The task names of the pre-registry TASKS dict — all must stay reachable.
LEGACY_TASKS = [
    "linial_reduction", "kdelta", "delta_squared", "outdegree",
    "defective_one_round", "defective", "linial", "delta_plus_one",
    "theorem13", "corollary14", "ruling_set",
]


class TestRegistryContents:
    def test_every_legacy_task_is_registered(self):
        names = algorithm_names()
        for task in LEGACY_TASKS:
            assert task in names

    def test_experiment_tasks_registered(self):
        assert "one_round_tightness" in algorithm_names()
        assert "baseline" in algorithm_names()

    def test_specs_carry_metadata(self):
        for spec in algorithm_specs():
            assert spec.summary, spec.name
            assert spec.guarantee, spec.name
            assert spec.output in ("coloring", "ruling set"), spec.name
            assert callable(spec.runner), spec.name

    def test_runners_are_importable_module_level_functions(self):
        # parallel workers resolve tasks by name, but custom forks may pass the
        # runner callable — it must be importable (module-level, no <locals>).
        for spec in algorithm_specs():
            assert "<locals>" not in spec.runner.__qualname__, spec.name

    def test_unknown_algorithm_is_a_keyerror_with_known_names(self):
        with pytest.raises(UnknownAlgorithmError) as excinfo:
            get_algorithm("no_such_algorithm")
        assert isinstance(excinfo.value, KeyError)
        assert "no_such_algorithm" in str(excinfo.value)
        assert "kdelta" in str(excinfo.value)


class TestParamValidation:
    def test_unknown_parameter_names_algorithm_and_accepted_keys(self):
        with pytest.raises(UnknownParameterError) as excinfo:
            validate_params("kdelta", {"q": 3})
        message = str(excinfo.value)
        assert "'kdelta'" in message and "['q']" in message and "['k']" in message

    def test_ill_typed_parameter_rejected(self):
        with pytest.raises(ParameterValueError, match="expects int"):
            validate_params("kdelta", {"k": "fast"})

    def test_bool_never_accepted_as_int(self):
        with pytest.raises(ParameterValueError):
            validate_params("kdelta", {"k": True})

    def test_int_accepted_for_float_param(self):
        assert validate_params("theorem13", {"epsilon": 1}) == {"epsilon": 1}

    def test_out_of_range_rejected(self):
        with pytest.raises(ParameterValueError, match=">= 1"):
            validate_params("kdelta", {"k": 0})

    def test_choices_enforced(self):
        with pytest.raises(ParameterValueError, match="one of"):
            validate_params("baseline", {"algorithm": "quantum"})

    def test_missing_required_rejected(self):
        with pytest.raises(ParameterValueError, match="required"):
            validate_params("one_round_tightness", {"k": 2})

    def test_values_returned_unchanged(self):
        params = {"k": 2}
        assert validate_params("kdelta", params) == {"k": 2}
        assert validate_params("kdelta", {}) == {}  # defaults are not injected

    def test_parse_cli_strings(self):
        spec = get_algorithm("ruling_set")
        assert spec.param("r").parse("ruling_set", "3") == 3
        assert spec.param("baseline").parse("ruling_set", "true") is True
        with pytest.raises(ParameterValueError, match="boolean"):
            spec.param("baseline").parse("ruling_set", "maybe")
        with pytest.raises(ParameterValueError, match="expects int"):
            spec.param("r").parse("ruling_set", "two")


class TestRegistration:
    def test_duplicate_registration_rejected(self):
        with pytest.raises(AlgorithmError, match="already registered"):
            register_algorithm("kdelta", summary="dup", guarantee="none")(lambda w, e: {})

    def test_register_and_appear_everywhere(self):
        @register_algorithm(
            "test_constant",
            summary="a test-only algorithm",
            guarantee="always zero rounds",
            params=[ParamSpec("scale", int, default=1, minimum=1)],
        )
        def _run_constant(w, engine, scale: int = 1):
            import numpy as np

            return {"rounds": 0, "value": w.graph.n * scale,
                    "_colors": np.zeros(w.graph.n, dtype=np.int64)}

        try:
            assert "test_constant" in algorithm_names()
            # the BatchRunner resolves it by name ...
            from repro.engine import BatchRunner, GraphSpec

            rec = BatchRunner(backend="array").run_cell(
                "test_constant", GraphSpec("ring", 12, 2, 0), params={"scale": 3}
            )
            assert rec["value"] == 36
            # ... and the CLI grows the subcommand with zero edits.
            from repro.cli import build_parser

            args = build_parser().parse_args(["color", "test_constant", "--scale", "2"])
            assert args.algorithm_name == "test_constant" and args.scale == 2
        finally:
            del registry._REGISTRY["test_constant"]

    def test_overwrite_allowed_when_requested(self):
        original = get_algorithm("kdelta")
        try:
            register_algorithm("kdelta", summary="replaced", guarantee="none",
                               overwrite=True)(lambda w, e: {"rounds": 0})
            assert get_algorithm("kdelta").summary == "replaced"
        finally:
            registry._REGISTRY["kdelta"] = original


class TestDeprecatedTasksView:
    def test_tasks_import_warns_once_and_matches_registry(self):
        import importlib

        batch = importlib.import_module("repro.engine.batch")
        with pytest.warns(DeprecationWarning, match="repro.engine.batch.TASKS is deprecated"):
            tasks = batch.TASKS
        assert set(tasks) == set(algorithm_names())
        for name, runner in tasks.items():
            assert runner is get_algorithm(name).runner

    def test_from_import_also_warns(self):
        with pytest.warns(DeprecationWarning):
            from repro.engine.batch import TASKS  # noqa: F401

    def test_other_missing_attributes_still_raise(self):
        import repro.engine.batch as batch

        with pytest.raises(AttributeError):
            batch.NO_SUCH_ATTRIBUTE
