"""Importable shared test helpers.

Kept out of ``conftest.py`` on purpose: ``conftest`` modules are loaded by
pytest under the single module name ``conftest``, so ``from conftest import
...`` resolves to whichever conftest was imported first (e.g.
``benchmarks/conftest.py`` when benchmarks are collected too).  Test modules
must import helpers from here instead.
"""

from __future__ import annotations

import numpy as np

from repro.congest.graph import Graph
from repro.congest.ids import distinct_input_coloring, random_proper_coloring

__all__ = ["make_input_coloring"]


def make_input_coloring(
    graph: Graph, m: int | None = None, seed: int = 0
) -> tuple[np.ndarray, int]:
    """A proper m-coloring for tests: distinct colors when the space allows it."""
    delta = max(1, graph.max_degree)
    if m is None:
        m = max(delta + 1, delta ** 4, graph.n)
    if m >= graph.n:
        return distinct_input_coloring(graph, m, seed=seed), m
    colors, m = random_proper_coloring(graph, num_colors=m, seed=seed)
    return colors, m
