"""Importable shared test helpers.

Kept out of ``conftest.py`` on purpose: ``conftest`` modules are loaded by
pytest under the single module name ``conftest``, so ``from conftest import
...`` resolves to whichever conftest was imported first (e.g.
``benchmarks/conftest.py`` when benchmarks are collected too).  Test modules
must import helpers from here instead.
"""

from __future__ import annotations

import numpy as np

from repro.congest.graph import Graph
from repro.congest.ids import distinct_input_coloring, random_proper_coloring
from repro.engine.array import ArrayEngine
from repro.engine.registry import register_engine

__all__ = [
    "make_input_coloring",
    "graph_fingerprint",
    "BrokenArrayEngine",
    "register_broken_engine",
    "scaled_n_task",
    "shared_graph_probe_task",
    "failing_task",
]


def make_input_coloring(
    graph: Graph, m: int | None = None, seed: int = 0
) -> tuple[np.ndarray, int]:
    """A proper m-coloring for tests: distinct colors when the space allows it."""
    delta = max(1, graph.max_degree)
    if m is None:
        m = max(delta + 1, delta ** 4, graph.n)
    if m >= graph.n:
        return distinct_input_coloring(graph, m, seed=seed), m
    colors, m = random_proper_coloring(graph, num_colors=m, seed=seed)
    return colors, m


def graph_fingerprint(family: str, n: int, delta: int, seed: int) -> bytes:
    """CSR bytes of a generated graph — comparable across worker processes.

    Module-level so multiprocessing can ship it to freshly spawned
    interpreters (the cross-process determinism tests run this in a
    ``spawn``-context pool and compare against the parent's bytes).
    """
    from repro.congest import generators

    g = generators.by_name(family, n, delta, seed=seed)
    return g.indptr.tobytes() + b"|" + g.indices.tobytes()


class BrokenArrayEngine(ArrayEngine):
    """A deliberately wrong backend for exercising ``ParityError`` paths.

    Shifts every color by the color-space size: the coloring stays proper
    (verification passes) but no longer matches the reference engine, so a
    parity check must trip — under serial and parallel execution alike.
    """

    name = "broken-array"

    def run_mother(self, graph, input_colors, m, **kwargs):
        result = super().run_mother(graph, input_colors, m, **kwargs)
        result.colors = result.colors + result.color_space_size
        return result


def register_broken_engine() -> None:
    """Register :class:`BrokenArrayEngine`; importable, so usable as ``worker_init``."""
    register_engine("broken-array", BrokenArrayEngine)


def scaled_n_task(workload, engine, scale: int = 2):
    """Minimal importable custom task for pickling/parallel tests."""
    return {"value": workload.graph.n * scale}


def shared_graph_probe_task(workload, engine):
    """Importable task reporting how the worker's graph is backed.

    ``segment`` is the shared-memory segment name when the workload graph is a
    zero-copy attachment of the parent's published graph, or ``"private"``
    when the worker holds its own copy — the parallel lifecycle tests assert
    on it (segment sharing, not W x copies).
    """
    return {
        "segment": workload.graph.shared_name or "private",
        "pid": __import__("os").getpid(),
        "n": workload.graph.n,
    }


def failing_task(workload, engine):
    """Importable task that always raises (worker-exception cleanup tests)."""
    raise RuntimeError(f"deliberate failure on n={workload.graph.n}")
