"""Tests for ruling-set verification."""

import numpy as np
import pytest

from repro.congest import generators
from repro.congest.graph import Graph
from repro.verify.coloring import VerificationError
from repro.verify.ruling import assert_ruling_set, domination_radius, is_independent_set


class TestIndependence:
    def test_independent(self):
        g = generators.ring(6)
        assert is_independent_set(g, [0, 2, 4])

    def test_not_independent(self):
        g = generators.ring(6)
        assert not is_independent_set(g, [0, 1])

    def test_empty_set_independent(self):
        assert is_independent_set(generators.ring(5), [])


class TestDomination:
    def test_radius_zero(self):
        g = generators.ring(4)
        assert domination_radius(g, range(4)) == 0

    def test_radius_of_single_center(self):
        g = generators.star(6)
        assert domination_radius(g, [0]) == 1
        assert domination_radius(g, [1]) == 2

    def test_path_endpoints(self):
        g = generators.path(7)
        assert domination_radius(g, [0]) == 6
        assert domination_radius(g, [3]) == 3

    def test_empty_set(self):
        assert domination_radius(generators.ring(5), []) == -1

    def test_disconnected_unreachable(self):
        g = Graph(4, [(0, 1)])
        assert domination_radius(g, [0]) == -1

    def test_empty_graph(self):
        assert domination_radius(generators.empty_graph(0), []) == 0


class TestAssertRulingSet:
    def test_valid_two_one_ruling_set(self):
        g = generators.ring(6)
        assert_ruling_set(g, [0, 3], r=2)

    def test_not_independent_rejected(self):
        g = generators.ring(6)
        with pytest.raises(VerificationError, match="independent"):
            assert_ruling_set(g, [0, 1], r=2)

    def test_domination_violated(self):
        g = generators.path(8)
        with pytest.raises(VerificationError, match="dominate"):
            assert_ruling_set(g, [0], r=3)

    def test_alpha_three_requires_distance_two(self):
        g = generators.path(5)
        # vertices 0 and 2 are at distance 2: independent in G but not in G^2.
        with pytest.raises(VerificationError, match="independent"):
            assert_ruling_set(g, [0, 2], r=4, alpha=3)
        assert_ruling_set(g, [0, 3], r=4, alpha=3)

    def test_out_of_range_vertex(self):
        g = generators.ring(4)
        with pytest.raises(VerificationError, match="out of range"):
            assert_ruling_set(g, [7], r=1)
