"""Unit tests for the CSR graph substrate."""

import warnings

import numpy as np
import pytest

from repro.congest import generators
from repro.congest import graph as graph_module
from repro.congest.graph import Graph, GraphError, GraphPerformanceWarning


class TestConstruction:
    def test_empty_graph(self):
        g = Graph(0, [])
        assert g.n == 0
        assert g.num_edges == 0
        assert g.max_degree == 0

    def test_single_edge(self):
        g = Graph(2, [(0, 1)])
        assert g.num_edges == 1
        assert g.degree(0) == 1
        assert g.degree(1) == 1
        assert g.has_edge(0, 1)
        assert g.has_edge(1, 0)

    def test_duplicate_edges_collapse(self):
        g = Graph(3, [(0, 1), (1, 0), (0, 1)])
        assert g.num_edges == 1

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            Graph(3, [(1, 1)])

    def test_out_of_range_rejected(self):
        with pytest.raises(GraphError):
            Graph(3, [(0, 3)])
        with pytest.raises(GraphError):
            Graph(3, [(-1, 0)])

    def test_negative_n_rejected(self):
        with pytest.raises(GraphError):
            Graph(-1, [])

    def test_from_edge_array(self):
        edges = np.array([[0, 1], [1, 2], [2, 3]])
        g = Graph.from_edge_array(4, edges)
        assert g.num_edges == 3
        assert g.max_degree == 2

    def test_from_edge_array_bad_shape(self):
        with pytest.raises(GraphError):
            Graph.from_edge_array(3, np.array([[0, 1, 2]]))

    def test_from_adjacency(self):
        g = Graph.from_adjacency([[1, 2], [0], [0]])
        assert g.num_edges == 2
        assert sorted(g.neighbors(0).tolist()) == [1, 2]

    def test_from_edge_array_matches_tuple_constructor(self):
        rng = np.random.default_rng(7)
        edges = rng.integers(0, 50, size=(400, 2))
        edges = edges[edges[:, 0] != edges[:, 1]]
        assert Graph.from_edge_array(50, edges) == Graph(50, map(tuple, edges.tolist()))

    def test_from_edge_array_validates_vectorized(self):
        with pytest.raises(GraphError, match="self loop on vertex 2"):
            Graph.from_edge_array(5, np.array([[0, 1], [2, 2]]))
        with pytest.raises(GraphError, match=r"edge \(0, 7\) out of range"):
            Graph.from_edge_array(5, np.array([[0, 7]]))
        with pytest.raises(GraphError, match="out of range"):
            Graph.from_edge_array(5, np.array([[-2, 1]]))

    def test_from_edge_array_collapses_both_orientations(self):
        g = Graph.from_edge_array(4, np.array([[0, 1], [1, 0], [3, 1], [1, 3], [1, 3]]))
        assert g.num_edges == 2

    def test_large_python_edge_list_warns_once(self, monkeypatch):
        monkeypatch.setattr(graph_module, "PYTHON_EDGE_LIST_WARN_THRESHOLD", 10)
        monkeypatch.setattr(graph_module, "_warned_python_edge_list", False)
        edges = [(i, i + 1) for i in range(20)]
        with pytest.warns(GraphPerformanceWarning, match="from_edge_array"):
            Graph(21, edges)
        with warnings.catch_warnings():  # one-time: the second build is silent
            warnings.simplefilter("error")
            Graph(21, edges)

    def test_edge_array_input_never_warns(self, monkeypatch):
        monkeypatch.setattr(graph_module, "PYTHON_EDGE_LIST_WARN_THRESHOLD", 10)
        monkeypatch.setattr(graph_module, "_warned_python_edge_list", False)
        i = np.arange(20, dtype=np.int64)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            Graph.from_edge_array(21, np.column_stack([i, i + 1]))

    def test_networkx_round_trip(self):
        nx = pytest.importorskip("networkx")
        original = generators.grid(3, 4)
        back = Graph.from_networkx(original.to_networkx())
        assert back == original


class TestAccessors:
    def test_neighbors_sorted(self):
        g = Graph(5, [(0, 4), (0, 2), (0, 1)])
        assert g.neighbors(0).tolist() == [1, 2, 4]

    def test_degrees_and_max_degree(self):
        g = generators.star(7)
        assert g.degree(0) == 6
        assert g.max_degree == 6
        assert g.degrees.sum() == 2 * g.num_edges

    def test_has_edge_false_cases(self):
        g = Graph(4, [(0, 1), (2, 3)])
        assert not g.has_edge(0, 2)
        assert not g.has_edge(1, 1)

    def test_edges_iteration_matches_edge_array(self):
        g = generators.gnp(25, 0.2, seed=1)
        from_iter = sorted(g.edges())
        from_array = sorted(map(tuple, g.edge_array().tolist()))
        assert from_iter == from_array

    def test_indptr_consistency(self):
        g = generators.random_regular(30, 4, seed=0)
        assert g.indptr[0] == 0
        assert g.indptr[-1] == g.indices.size
        assert np.all(np.diff(g.indptr) == g.degrees)

    def test_arrays_read_only(self):
        g = generators.ring(5)
        with pytest.raises(ValueError):
            g.indices[0] = 99


class TestDerivedGraphs:
    def test_induced_subgraph(self):
        g = generators.complete_graph(6)
        sub, mapping = g.induced_subgraph([1, 3, 5])
        assert sub.n == 3
        assert sub.num_edges == 3
        assert mapping.tolist() == [1, 3, 5]

    def test_induced_subgraph_no_edges(self):
        g = generators.ring(8)
        sub, _ = g.induced_subgraph([0, 2, 4, 6])
        assert sub.num_edges == 0

    def test_induced_subgraph_out_of_range(self):
        g = generators.ring(5)
        with pytest.raises(GraphError):
            g.induced_subgraph([0, 99])

    def test_power_graph_of_path(self):
        g = generators.path(5)
        g2 = g.power_graph(2)
        assert g2.has_edge(0, 2)
        assert g2.has_edge(0, 1)
        assert not g2.has_edge(0, 3)

    def test_power_graph_identity(self):
        g = generators.ring(7)
        assert g.power_graph(1) is g

    def test_power_graph_invalid(self):
        with pytest.raises(GraphError):
            generators.ring(5).power_graph(0)

    def test_bfs_distances(self):
        g = generators.path(6)
        dist = g.bfs_distances(0)
        assert dist.tolist() == [0, 1, 2, 3, 4, 5]

    def test_bfs_cutoff(self):
        g = generators.path(6)
        dist = g.bfs_distances(0, cutoff=2)
        assert dist.tolist() == [0, 1, 2, -1, -1, -1]

    def test_bfs_unreachable(self):
        g = Graph(4, [(0, 1)])
        dist = g.bfs_distances(0)
        assert dist[2] == -1 and dist[3] == -1

    def test_connected_components(self):
        g = generators.disjoint_union(generators.ring(4), generators.path(3))
        comps = g.connected_components()
        assert sorted(len(c) for c in comps) == [3, 4]

    def test_equality_and_hash(self):
        a = generators.ring(6)
        b = generators.ring(6)
        c = generators.path(6)
        assert a == b
        assert hash(a) == hash(b)
        assert a != c
