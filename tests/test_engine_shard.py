"""Deterministic sharding: shard_of, Run.shard, and sharded BatchRunner runs.

The sharding contract under `repro batch --shard i/k` / `run_spec(shard=...)`:

* the partition is a pure function of cell identity and k — worker count,
  machine, and shard launch order never move a cell between shards;
* the k shards are disjoint and complete (every cell in exactly one);
* a shard's records are byte-identical to the corresponding slice of an
  unsharded run (global grid indices, same values);
* `Run.shard` is omitted from serialized specs when None, so the hash of
  every pre-existing spec document is unchanged;
* a shard's result file refuses to resume as a different shard.
"""

import json

import pytest

from repro.api.spec import JobSpec, Run, SpecError, spec_hash
from repro.api.solve import run_spec
from repro.engine import BatchRunner
from repro.engine.batch import EngineError
from repro.engine.sink import JsonlSink, SinkError, cell_id, cell_key, shard_of

CELLS = BatchRunner.grid("random_regular", (30, 40), (4, 6), seeds=(0, 1))
PARAMS = {"k": 1}

SPEC = {
    "problems": [
        {"graph": {"family": "random_regular", "n": n, "delta": 4, "seed": s}}
        for n in (30, 40) for s in (0, 1)
    ],
    "run": {"algorithm": "delta_plus_one", "backend": "array"},
}


class TestShardOf:
    def test_deterministic_and_in_range(self):
        keys = [cell_key("kdelta", spec, PARAMS) for spec in CELLS]
        for of in (1, 2, 3, 7):
            first = [shard_of(key, of) for key in keys]
            assert [shard_of(key, of) for key in keys] == first
            assert all(0 <= index < of for index in first)

    def test_of_one_maps_everything_to_zero(self):
        assert {shard_of(cell_key("kdelta", spec, PARAMS), 1) for spec in CELLS} == {0}

    def test_domain_separated_from_cell_id(self):
        # shard_of hashes b"shard:" + key, cell_id hashes the bare key; the
        # two must never be interchangeable views of the same digest.
        key = cell_key("kdelta", CELLS[0], PARAMS)
        assert shard_of(key, 2 ** 63) != int(cell_id(key), 16) % 2 ** 63

    def test_invalid_count_rejected(self):
        with pytest.raises(SinkError, match="shard count"):
            shard_of("x", 0)


class TestRunShardField:
    def test_omitted_when_none_so_old_hashes_freeze(self):
        assert "shard" not in Run(algorithm="delta_plus_one").to_dict()
        assert spec_hash(SPEC) == spec_hash(json.loads(json.dumps(SPEC)))

    def test_round_trips(self):
        run = Run(algorithm="delta_plus_one", shard=(1, 3))
        data = run.to_dict()
        assert data["shard"] == [1, 3]
        assert Run.from_dict(data).shard == (1, 3)

    def test_sharded_spec_hashes_differently(self):
        sharded = {**SPEC, "run": {**SPEC["run"], "shard": [0, 2]}}
        assert spec_hash(sharded) != spec_hash(SPEC)

    @pytest.mark.parametrize("bad", [(2, 2), (-1, 2), (0, 0), "0/2", (1,)])
    def test_invalid_shard_rejected(self, bad):
        with pytest.raises(SpecError, match="shard"):
            Run(algorithm="delta_plus_one", shard=bad)

    def test_runner_rejects_bad_shard(self):
        runner = BatchRunner(backend="array")
        with pytest.raises(EngineError, match="shard"):
            runner.run("kdelta", CELLS[:2], shard=(3, 2))


class TestShardedRuns:
    @pytest.mark.parametrize("of", [1, 2, 3])
    def test_partition_disjoint_and_complete(self, tmp_path, of):
        runner = BatchRunner(backend="array")
        full = runner.run("kdelta", CELLS, params_grid=[PARAMS])
        merged_cells: list[str] = []
        for index in range(of):
            path = tmp_path / f"s{index}.jsonl"
            with JsonlSink(path) as sink:
                runner.run("kdelta", CELLS, params_grid=[PARAMS], sink=sink,
                           shard=(index, of))
            lines = [json.loads(l) for l in path.read_text().splitlines()]
            manifest = lines[0]["manifest"]
            assert manifest["shard"]["index"] == index
            assert manifest["shard"]["of"] == of
            assert manifest["shard"]["total"] == len(full)
            assert manifest["cells"] == len(lines) - 1
            merged_cells.extend(obj["cell"] for obj in lines[1:])
        assert len(merged_cells) == len(set(merged_cells)) == len(full)

    def test_shard_records_equal_unsharded_slice(self, tmp_path):
        runner = BatchRunner(backend="array")
        full_path = tmp_path / "full.jsonl"
        with JsonlSink(full_path) as sink:
            runner.run("kdelta", CELLS, params_grid=[PARAMS], sink=sink)
        full = [json.loads(l) for l in full_path.read_text().splitlines()][1:]
        by_cell = {obj["cell"]: obj["record"] for obj in full}

        shard_path = tmp_path / "s0.jsonl"
        with JsonlSink(shard_path) as sink:
            runner.run("kdelta", CELLS, params_grid=[PARAMS], sink=sink,
                       shard=(0, 2))
        lines = [json.loads(l) for l in shard_path.read_text().splitlines()]
        manifest, records = lines[0]["manifest"], lines[1:]
        # Same full-grid hash as the unsharded run: merge validates with it.
        full_manifest_path = tmp_path / "full.jsonl"
        full_manifest = json.loads(
            full_manifest_path.read_text().splitlines()[0])["manifest"]
        assert manifest["grid_hash"] == full_manifest["grid_hash"]
        assert records, "shard 0/2 of an 8-cell grid should not be empty"
        for obj in records:
            reference = dict(by_cell[obj["cell"]])
            mine = dict(obj["record"])
            reference.pop("seconds"), mine.pop("seconds")
            assert mine == reference

    def test_run_spec_shard_override_keeps_hash(self, tmp_path):
        # run_spec hashes the canonicalized document (JobSpec round-trip).
        digest = spec_hash(JobSpec.from_dict(SPEC))
        path = tmp_path / "s1.jsonl"
        with JsonlSink(path) as sink:
            run_spec(SPEC, sink=sink, shard=(1, 2))
        manifest = json.loads(path.read_text().splitlines()[0])["manifest"]
        assert manifest["spec_hash"] == digest
        assert manifest["shard"]["of"] == 2

    def test_spec_declared_shard_executes(self, tmp_path):
        sharded = {**SPEC, "run": {**SPEC["run"], "shard": [0, 2]}}
        path = tmp_path / "declared.jsonl"
        with JsonlSink(path) as sink:
            run_spec(sharded, sink=sink)
        manifest = json.loads(path.read_text().splitlines()[0])["manifest"]
        assert manifest["shard"] == {
            "index": 0, "of": 2,
            "total": manifest["shard"]["total"],
            "cells": manifest["shard"]["cells"],
        }

    def test_cross_shard_resume_refused(self, tmp_path):
        runner = BatchRunner(backend="array")
        path = tmp_path / "s0.jsonl"
        with JsonlSink(path) as sink:
            runner.run("kdelta", CELLS, params_grid=[PARAMS], sink=sink,
                       shard=(0, 2))
        with pytest.raises(SinkError, match="shard"):
            with JsonlSink(path, resume=True) as sink:
                runner.run("kdelta", CELLS, params_grid=[PARAMS], sink=sink,
                           shard=(1, 2))

    def test_worker_count_does_not_move_cells(self, tmp_path):
        serial, parallel = tmp_path / "w1.jsonl", tmp_path / "w3.jsonl"
        for path, workers in ((serial, 1), (parallel, 3)):
            with JsonlSink(path) as sink:
                BatchRunner(backend="array", workers=workers).run(
                    "kdelta", CELLS, params_grid=[PARAMS], sink=sink,
                    shard=(1, 2))
        cells = lambda p: [json.loads(l)["cell"]
                           for l in p.read_text().splitlines()[1:]]
        assert cells(serial) == cells(parallel)
