"""Tests for Theorem 1.6: the one-round reduction and its tightness."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.congest import generators
from repro.congest.ids import random_proper_coloring, distinct_input_coloring
from repro.core.one_round import (
    max_reducible_colors,
    one_round_color_reduction,
    one_round_reduction_exists,
    required_input_colors,
)
from repro.verify.coloring import assert_proper_coloring


class TestClosedForm:
    def test_examples_from_the_paper(self):
        # "to reduce 1 color one needs at least Delta + 2 input colors, to
        #  reduce 2 colors one needs 2 Delta + 2, to reduce 3 colors 3 Delta,
        #  to reduce 4 colors 4 Delta - 4, 5 colors 5 Delta - 10, 6 colors 6 Delta - 18"
        delta = 20
        assert required_input_colors(delta, 1) == delta + 2
        assert required_input_colors(delta, 2) == 2 * delta + 2
        assert required_input_colors(delta, 3) == 3 * delta
        assert required_input_colors(delta, 4) == 4 * delta - 4
        assert required_input_colors(delta, 5) == 5 * delta - 10
        assert required_input_colors(delta, 6) == 6 * delta - 18

    def test_max_reducible_monotone_in_m(self):
        delta = 10
        values = [max_reducible_colors(m, delta) for m in range(delta + 1, 4 * delta)]
        assert all(a <= b for a, b in zip(values, values[1:]))

    def test_max_reducible_zero_below_threshold(self):
        assert max_reducible_colors(5, 4) == 0
        assert max_reducible_colors(6, 4) == 1

    def test_max_reducible_respects_upper_limit(self):
        delta = 6
        k = max_reducible_colors(10 ** 6, delta)
        assert k <= min(delta - 1, (delta + 3) // 2)


class TestLemma41Algorithm:
    @pytest.mark.parametrize("delta,k", [(4, 1), (4, 3), (6, 2), (6, 4), (8, 5), (10, 3)])
    def test_exact_reduction_on_random_graphs(self, delta, k):
        m = required_input_colors(delta, k)
        g = generators.random_regular(80 + (80 * delta) % 2, delta, seed=delta * 10 + k)
        colors, m = random_proper_coloring(g, num_colors=m, seed=k)
        res = one_round_color_reduction(g, colors, m, k=k, delta=delta)
        assert res.rounds == 1
        assert_proper_coloring(g, res.colors, max_colors=m - k)
        assert res.colors.max() < m - k

    def test_reduction_on_clique(self):
        # Worst case: every color class has size 1 and every node sees all others.
        delta = 7
        g = generators.complete_graph(delta + 1)
        k = min(delta - 1, (delta + 3) // 2)
        m = required_input_colors(delta, k)
        colors = distinct_input_coloring(g, m, seed=1)
        res = one_round_color_reduction(g, colors, m, k=k, delta=delta)
        assert_proper_coloring(g, res.colors, max_colors=m - k)

    def test_extra_input_colors_left_untouched(self):
        delta, k = 5, 2
        m_needed = required_input_colors(delta, k)
        m = m_needed + 7
        g = generators.random_regular(60, delta, seed=3)
        colors, m = random_proper_coloring(g, num_colors=m, seed=3)
        res = one_round_color_reduction(g, colors, m, k=k, delta=delta)
        assert_proper_coloring(g, res.colors, max_colors=m - k)
        assert res.color_space_size == m - k

    def test_insufficient_colors_rejected(self):
        g = generators.ring(10)
        colors = np.arange(10) % 3
        with pytest.raises(ValueError):
            one_round_color_reduction(g, colors, m=3, k=1, delta=2)

    def test_k_out_of_theorem_range_rejected(self):
        g = generators.random_regular(20, 4, seed=1)
        colors, m = random_proper_coloring(g, num_colors=100, seed=1)
        with pytest.raises(ValueError):
            one_round_color_reduction(g, colors, m, k=4, delta=4)

    def test_default_k_is_maximal(self):
        delta = 8
        m = required_input_colors(delta, 3) + 1
        g = generators.random_regular(40, delta, seed=2)
        colors, m = random_proper_coloring(g, num_colors=m, seed=2)
        res = one_round_color_reduction(g, colors, m, delta=delta)
        assert res.metadata["k"] == max_reducible_colors(m, delta)

    @settings(max_examples=25, deadline=None)
    @given(
        delta=st.integers(min_value=3, max_value=10),
        k_frac=st.floats(min_value=0.0, max_value=1.0),
        seed=st.integers(min_value=0, max_value=500),
    )
    def test_property_reduction_always_proper(self, delta, k_frac, seed):
        upper = min(delta - 1, (delta + 3) // 2)
        k = max(1, int(round(1 + k_frac * (upper - 1))))
        m = required_input_colors(delta, k)
        n = 40 + (40 * delta) % 2
        g = generators.random_regular(n, delta, seed=seed)
        colors, m = random_proper_coloring(g, num_colors=m, seed=seed)
        res = one_round_color_reduction(g, colors, m, k=k, delta=delta)
        assert_proper_coloring(g, res.colors, max_colors=m - k)


class TestLemma43Impossibility:
    def test_positive_side_trivial(self):
        # With enough output colors an algorithm always exists (identity).
        assert one_round_reduction_exists(m=5, delta=2, output_colors=5)

    def test_delta2_tight(self):
        delta = 2
        # removing 1 color needs Delta + 2 = 4 input colors ...
        assert one_round_reduction_exists(m=4, delta=delta, output_colors=3)
        # ... and with only 3 input colors no algorithm reaches 2 output colors.
        assert not one_round_reduction_exists(m=3, delta=delta, output_colors=2)

    def test_delta3_tight(self):
        delta = 3
        assert one_round_reduction_exists(m=5, delta=delta, output_colors=4)
        assert not one_round_reduction_exists(m=4, delta=delta, output_colors=3)

    @pytest.mark.slow
    def test_delta4_tight(self):
        delta = 4
        assert one_round_reduction_exists(m=6, delta=delta, output_colors=5)
        assert not one_round_reduction_exists(m=5, delta=delta, output_colors=4)
