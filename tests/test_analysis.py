"""Tests for the analysis layer: bounds, tables, and the experiment harness."""

import pytest

from repro.analysis import bounds
from repro.analysis.experiments import EXPERIMENTS, run_experiment
from repro.analysis.tables import Table


class TestBounds:
    def test_log_star(self):
        assert bounds.log_star(1) == 0
        assert bounds.log_star(2) == 1
        assert bounds.log_star(4) == 2
        assert bounds.log_star(16) == 3
        assert bounds.log_star(65536) == 4
        assert bounds.log_star(2 ** 65536 if False else 10 ** 80) == 5

    def test_corollary12_formulas(self):
        assert bounds.corollary12_1_colors(10) == 25600
        assert bounds.corollary12_2_colors(10, 4) == 640
        assert bounds.corollary12_2_rounds(10, 4) == 40
        assert bounds.corollary12_3_colors(9) == 81

    def test_outdegree_and_defective_bounds_positive(self):
        for delta in (8, 16, 64):
            for b in (1, 2, 4):
                assert bounds.corollary12_4_colors(delta, b) > 0
                assert bounds.corollary12_5_colors(delta, b) > 0
                assert bounds.corollary12_6_rounds(delta, b) > 0

    def test_theorem11_round_bound_decreases_in_k(self):
        values = [bounds.theorem11_round_bound(16 ** 4, 16, 0, k) for k in (1, 2, 4, 8)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_theorem13_and_15(self):
        assert bounds.theorem13_colors(16, 0.5) == 64
        assert bounds.theorem13_rounds(16, 0.5) == 2
        assert bounds.theorem15_rounds(16, 2) == 4
        assert bounds.sew13_ruling_rounds(16, 2) == 16

    def test_theorem16_matches_examples(self):
        delta = 20
        assert bounds.theorem16_max_reduction(delta + 1, delta) == 0
        assert bounds.theorem16_max_reduction(delta + 2, delta) == 1
        assert bounds.theorem16_max_reduction(2 * delta + 2, delta) == 2
        assert bounds.theorem16_max_reduction(3 * delta, delta) == 3


class TestTable:
    def test_add_row_and_render(self):
        t = Table("demo", ["a", "b"])
        t.add_row(1, 2.5)
        t.add_row("x", 3)
        t.add_note("a note")
        text = t.render()
        assert "### demo" in text
        assert "| a" in text and "2.50" in text
        assert "- a note" in text

    def test_row_length_checked(self):
        t = Table("demo", ["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(1)

    def test_column_and_dicts(self):
        t = Table("demo", ["a", "b"])
        t.add_row(1, 2)
        t.add_row(3, 4)
        assert t.column("b") == [2, 4]
        assert t.to_dicts()[1] == {"a": 3, "b": 4}


class TestExperimentHarness:
    def test_registry_complete(self):
        assert sorted(EXPERIMENTS) == [f"E{i}" for i in (1, 10, 2, 3, 4, 5, 6, 7, 8, 9)]

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("E99")

    # Small-instance smoke runs of each experiment (the benchmarks run the
    # full-size versions).  Every experiment enforces its own invariants
    # internally via the verify module, so "it returns a non-empty table" plus
    # those internal assertions is a meaningful check.
    def test_e1_small(self):
        table = run_experiment("E1", n=60, deltas=(4, 6))
        assert len(table.rows) == 4
        assert all(r == 1 for r in table.column("rounds"))

    def test_e2_small(self):
        table = run_experiment("E2", n=80, delta=8)
        assert len(table.rows) >= 2

    def test_e3_small(self):
        table = run_experiment("E3", n=80, deltas=(4, 8))
        assert len(table.rows) == 2

    def test_e4_small(self):
        table = run_experiment("E4", n=60, delta=8, epsilons=(0.5,))
        assert len(table.rows) == 1

    def test_e5_small(self):
        table = run_experiment("E5", n=60, delta=8, epsilons=(0.5,))
        assert len(table.rows) == 2

    def test_e6_small(self):
        table = run_experiment("E6", sizes=(60,), delta=6)
        assert len(table.rows) == 1

    def test_e7_small(self):
        table = run_experiment("E7", n=60, deltas=(8,))
        assert len(table.rows) == 1

    def test_e8_small(self):
        table = run_experiment("E8", n=60, delta=8, rs=(2,))
        assert len(table.rows) == 2

    def test_e9_small(self):
        table = run_experiment("E9", n=40, deltas=(4, 6))
        assert all(table.column("proper"))

    def test_e10_small(self):
        table = run_experiment("E10", n=60, delta=8)
        assert len(table.rows) >= 6
