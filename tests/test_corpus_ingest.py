"""Edge-list ingestion, the content-addressed cache, and GraphFormatError."""

import gzip
import json
import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.congest.graph import Graph, GraphError, GraphFormatError
from repro.corpus import cache, file_spec, graph_info, ingest, load_file_graph, parse_edge_list
from repro.corpus.ingest import build_graph


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv(cache.CACHE_ENV, str(tmp_path / "corpus-cache"))


def write(tmp_path, text, name="edges.txt"):
    path = tmp_path / name
    path.write_text(text)
    return path


# --------------------------------------------------------------------------- #
# Parsing dialects
# --------------------------------------------------------------------------- #


class TestParseEdgeList:
    def test_plain_zero_indexed(self, tmp_path):
        parsed = parse_edge_list(write(tmp_path, "0 1\n1 2\n2 0\n"))
        assert parsed.n == 3
        assert parsed.edges.tolist() == [[0, 1], [1, 2], [2, 0]]

    def test_comments_blanks_and_tabs(self, tmp_path):
        text = "# a comment\n\n% another\n// third style\n0\t1\n\n1\t2\n"
        parsed = parse_edge_list(write(tmp_path, text))
        assert parsed.edges.tolist() == [[0, 1], [1, 2]]
        assert parsed.meta["comment_lines"] == 3

    def test_csv_with_header(self, tmp_path):
        parsed = parse_edge_list(write(tmp_path, "source,target\n0,1\n1,2\n", "e.csv"))
        assert parsed.meta["header_skipped"] is True
        assert parsed.meta["format"] == "csv"
        assert parsed.edges.tolist() == [[0, 1], [1, 2]]

    def test_one_indexed_relabelled(self, tmp_path):
        parsed = parse_edge_list(write(tmp_path, "1 2\n2 3\n"))
        assert parsed.n == 3
        assert parsed.meta["relabelled"] is True
        assert parsed.meta["id_min"] == 1
        assert parsed.edges.min() == 0

    def test_gapped_ids_relabelled_densely(self, tmp_path):
        parsed = parse_edge_list(write(tmp_path, "10 20\n20 900\n"))
        assert parsed.n == 3
        assert sorted(np.unique(parsed.edges).tolist()) == [0, 1, 2]

    def test_gzip_snap_dialect(self, tmp_path):
        path = tmp_path / "snap.txt.gz"
        body = "# FromNodeId\tToNodeId\n1\t2\n2\t1\n2\t3\n3\t2\n"
        path.write_bytes(gzip.compress(body.encode()))
        parsed = parse_edge_list(path)
        assert parsed.meta["compressed"] is True
        graph, meta = build_graph(parsed)
        assert graph.n == 3
        assert meta["m"] == 2  # both directions collapse
        assert meta["duplicate_edges"] == 2

    def test_extra_columns_ignored(self, tmp_path):
        # SNAP-adjacent formats carry weights/timestamps in trailing columns
        parsed = parse_edge_list(write(tmp_path, "0 1 1.5 999\n1 2 0.25 998\n"))
        assert parsed.edges.tolist() == [[0, 1], [1, 2]]

    def test_self_loop_rejected_with_line(self, tmp_path):
        path = write(tmp_path, "# c\n0 1\n1 1\n")
        with pytest.raises(GraphFormatError) as excinfo:
            build_graph(parse_edge_list(path))
        assert "edges.txt:3" in str(excinfo.value)

    def test_self_loop_dropped_on_request(self, tmp_path):
        path = write(tmp_path, "0 1\n1 1\n1 2\n")
        parsed = parse_edge_list(path, drop_self_loops=True)
        assert parsed.meta["self_loops_dropped"] == 1
        assert parsed.edges.tolist() == [[0, 1], [1, 2]]

    def test_non_numeric_payload_rejected_with_line(self, tmp_path):
        path = write(tmp_path, "0 1\nfoo bar\n")
        with pytest.raises(GraphFormatError) as excinfo:
            parse_edge_list(path)
        assert "edges.txt:2" in str(excinfo.value)

    def test_second_header_rejected(self, tmp_path):
        path = write(tmp_path, "source,target\nalso,text\n0,1\n", "e.csv")
        with pytest.raises(GraphFormatError):
            parse_edge_list(path)

    def test_single_column_rejected(self, tmp_path):
        with pytest.raises(GraphFormatError) as excinfo:
            parse_edge_list(write(tmp_path, "0 1\n42\n"))
        assert "edges.txt:2" in str(excinfo.value)

    def test_empty_file_rejected(self, tmp_path):
        with pytest.raises(GraphFormatError):
            parse_edge_list(write(tmp_path, "# only comments\n"))

    def test_missing_file_raises_oserror(self, tmp_path):
        with pytest.raises(OSError):
            parse_edge_list(tmp_path / "absent.txt")


# --------------------------------------------------------------------------- #
# GraphFormatError out of Graph.from_edge_array (satellite: typed errors)
# --------------------------------------------------------------------------- #


class TestGraphFormatError:
    def test_self_loop_names_edge_index(self):
        with pytest.raises(GraphFormatError) as excinfo:
            Graph.from_edge_array(3, np.array([[0, 1], [2, 2]]))
        assert excinfo.value.index == 1
        assert "self loop" in str(excinfo.value)

    def test_out_of_range_names_edge(self):
        with pytest.raises(GraphFormatError) as excinfo:
            Graph.from_edge_array(2, np.array([[0, 1], [1, 5]]))
        assert excinfo.value.index == 1

    def test_non_integral_float_rejected(self):
        with pytest.raises(GraphFormatError):
            Graph.from_edge_array(3, np.array([[0.0, 1.5], [1.0, 2.0]]))

    def test_integral_float_accepted(self):
        graph = Graph.from_edge_array(3, np.array([[0.0, 1.0], [1.0, 2.0]]))
        assert graph.n == 3

    def test_string_edges_rejected(self):
        with pytest.raises(GraphFormatError):
            Graph.from_edge_array(2, [["a", "b"]])

    def test_is_a_graph_error(self):
        assert issubclass(GraphFormatError, GraphError)


# --------------------------------------------------------------------------- #
# Property: edge list -> CSR -> edge list round-trip
# --------------------------------------------------------------------------- #


@st.composite
def edge_lists(draw):
    n = draw(st.integers(min_value=2, max_value=24))
    pool = [(u, v) for u in range(n) for v in range(u + 1, n)]
    count = draw(st.integers(min_value=1, max_value=min(len(pool), 40)))
    return draw(st.permutations(pool)), count


@settings(max_examples=40, deadline=None)
@given(data=edge_lists(), one_indexed=st.booleans(), list_both=st.booleans())
def test_roundtrip_edge_list_csr_edge_list(tmp_path_factory, data, one_indexed, list_both):
    pool, count = data
    edges = sorted(pool[:count])
    offset = 1 if one_indexed else 0
    lines = [f"{u + offset} {v + offset}" for u, v in edges]
    if list_both:
        lines += [f"{v + offset} {u + offset}" for u, v in edges]
    tmp = tmp_path_factory.mktemp("roundtrip")
    path = tmp / "edges.txt"
    path.write_text("\n".join(lines) + "\n")

    graph, _meta = build_graph(parse_edge_list(path))
    # CSR -> edge list: every adjacency appears exactly once per direction
    recovered = set()
    indptr = np.asarray(graph.indptr)
    indices = np.asarray(graph.indices)
    for u in range(graph.n):
        for v in indices[indptr[u]:indptr[u + 1]].tolist():
            recovered.add((min(u, v), max(u, v)))
    # relabel the written edges the way ingestion does (dense, order-preserving)
    used = sorted({x for e in edges for x in e})
    relabel = {old: new for new, old in enumerate(used)}
    expected = {(relabel[u], relabel[v]) for u, v in edges}
    assert recovered == expected
    assert graph.n == len(used)


# --------------------------------------------------------------------------- #
# The content-addressed cache
# --------------------------------------------------------------------------- #


class TestCache:
    def test_second_ingest_hits_cache(self, tmp_path):
        path = write(tmp_path, "0 1\n1 2\n")
        first = ingest(path)
        second = ingest(path)
        assert first.cached is False and second.cached is True
        assert first.digest == second.digest

    def test_cache_hit_is_byte_identical(self, tmp_path):
        path = write(tmp_path, "0 1\n1 2\n2 3\n1 3\n")
        first = ingest(path)
        artifact = cache.artifact_path(first.digest)
        before = artifact.read_bytes()
        second = ingest(path)
        assert artifact.read_bytes() == before
        for field in ("indptr", "indices"):
            np.testing.assert_array_equal(
                np.asarray(getattr(first.graph, field)),
                np.asarray(getattr(second.graph, field)),
            )

    def test_content_addressing_follows_bytes(self, tmp_path):
        a = write(tmp_path, "0 1\n1 2\n", "a.txt")
        b = write(tmp_path, "0 1\n1 2\n", "b.txt")
        c = write(tmp_path, "0 1\n1 2\n2 3\n", "c.txt")
        assert ingest(a).digest == ingest(b).digest
        assert ingest(a).digest != ingest(c).digest
        assert ingest(b).cached is True  # same bytes, different name: cache hit

    def test_cached_load_is_mmap_backed(self, tmp_path):
        path = write(tmp_path, "\n".join(f"{i} {i+1}" for i in range(200)) + "\n")
        digest = ingest(path).digest
        loaded = cache.load(digest)
        assert loaded is not None
        graph, _meta = loaded
        assert isinstance(np.asarray(graph.indptr).base, np.memmap) or isinstance(
            graph.indptr, np.memmap
        )

    def test_corrupt_cache_entry_is_a_miss(self, tmp_path):
        path = write(tmp_path, "0 1\n1 2\n")
        digest = ingest(path).digest
        cache.artifact_path(digest).write_bytes(b"not a zip file")
        assert cache.load(digest) is None
        again = ingest(path)  # falls back to a re-parse and re-store
        assert again.cached is False
        assert again.graph.n == 3

    def test_use_cache_false_forces_cold_parse(self, tmp_path):
        path = write(tmp_path, "0 1\n")
        ingest(path)
        again = ingest(path, use_cache=False)  # hit available, but skipped
        assert again.cached is False
        assert cache.artifact_path(again.digest).exists()  # entry refreshed


# --------------------------------------------------------------------------- #
# file_spec / load_file_graph / graph_info
# --------------------------------------------------------------------------- #


class TestFileSpec:
    def test_spec_records_measured_shape(self, tmp_path):
        path = write(tmp_path, "0 1\n1 2\n2 0\n0 3\n")
        spec = file_spec(path)
        assert (spec.family, spec.n, spec.delta, spec.seed) == ("file", 4, 3, 0)
        graph = load_file_graph(spec)
        assert graph.n == 4

    def test_drifted_file_is_rejected(self, tmp_path):
        path = write(tmp_path, "0 1\n1 2\n")
        spec = file_spec(path)
        path.write_text("0 1\n1 2\n2 3\n3 4\n")  # the file changes under the spec
        with pytest.raises(GraphError, match="does not match its spec"):
            load_file_graph(spec)

    def test_pathless_file_spec_rejected(self, tmp_path):
        from repro.engine.batch import GraphSpec

        with pytest.raises(GraphError, match="no path"):
            load_file_graph(GraphSpec("file", 4, 2, 0))

    def test_graph_info_facts(self, tmp_path):
        path = write(tmp_path, "0 1\n1 2\n3 4\n")
        info = graph_info(ingest(path).graph)
        assert info["n"] == 5
        assert info["m"] == 3
        assert info["delta"] == 2
        assert info["components"] == 2
        assert info["degree_histogram"] == {1: 4, 2: 1}
