"""CLI tests for `repro corpus` and `repro graph info`."""

import json
import pathlib

import pytest

from repro.cli import build_parser, main
from repro.corpus import cache

REPO_CORPUS = str(pathlib.Path(__file__).resolve().parent.parent / "corpus")


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv(cache.CACHE_ENV, str(tmp_path / "corpus-cache"))


@pytest.fixture
def toy(tmp_path):
    path = tmp_path / "toy.txt"
    path.write_text("0 1\n1 2\n2 3\n3 4\n4 0\n0 2\n")
    return path


class TestCorpusCommand:
    def test_subset_sweep_prints_summary(self, capsys):
        code = main(["corpus", "--corpus-dir", REPO_CORPUS,
                     "--graphs", "mesh-sample",
                     "--algorithms", "linial", "delta_plus_one"])
        out = capsys.readouterr().out
        assert code == 0
        assert "mesh-sample" in out
        assert "all verified" in out
        assert "| yes" in out

    def test_summary_files_written_and_deterministic(self, tmp_path, capsys):
        argv = ["corpus", "--corpus-dir", REPO_CORPUS, "--graphs", "mesh-sample",
                "--algorithms", "linial"]
        assert main(argv + ["--summary-dir", str(tmp_path / "a")]) == 0
        assert main(argv + ["--summary-dir", str(tmp_path / "b"),
                            "--workers", "2"]) == 0
        for name in ("corpus_summary.json", "corpus_summary.md"):
            assert (tmp_path / "a" / name).read_bytes() == \
                   (tmp_path / "b" / name).read_bytes()

    def test_records_sink(self, tmp_path, capsys):
        out_path = tmp_path / "records.jsonl"
        assert main(["corpus", "--corpus-dir", REPO_CORPUS,
                     "--graphs", "mesh-sample", "--algorithms", "linial",
                     "--output", str(out_path)]) == 0
        lines = [json.loads(line) for line in out_path.read_text().splitlines()]
        records = [entry["record"] for entry in lines if "record" in entry]
        assert len(records) == 1
        assert records[0]["algorithm"] == "linial"
        assert records[0]["verified"] is True

    def test_unknown_graph_rejected(self, capsys):
        with pytest.raises(SystemExit, match="unknown corpus graph"):
            main(["corpus", "--corpus-dir", REPO_CORPUS, "--graphs", "nope"])

    def test_required_param_algorithm_rejected(self, capsys):
        with pytest.raises(SystemExit, match="required parameters"):
            main(["corpus", "--corpus-dir", REPO_CORPUS,
                  "--algorithms", "baseline"])

    def test_drifted_corpus_fails_integrity_check(self, tmp_path, capsys):
        corpus_dir = tmp_path / "corpus"
        corpus_dir.mkdir()
        manifest = json.loads(
            (pathlib.Path(REPO_CORPUS) / "MANIFEST.json").read_text())
        manifest["graphs"] = manifest["graphs"][:1]
        entry = manifest["graphs"][0]
        (corpus_dir / entry["file"]).write_text("0 1\n")  # drifted bytes
        (corpus_dir / "MANIFEST.json").write_text(json.dumps(manifest))
        code = main(["corpus", "--corpus-dir", str(corpus_dir)])
        err = capsys.readouterr().err
        assert code == 1
        assert "drifted" in err

    def test_shard_requires_output(self):
        with pytest.raises(SystemExit, match="--shard requires --output"):
            main(["corpus", "--corpus-dir", REPO_CORPUS, "--shard", "0/2"])


class TestGraphInfo:
    def test_file_target(self, toy, capsys):
        assert main(["graph", "info", str(toy)]) == 0
        out = capsys.readouterr().out
        assert "graph info" in out
        assert "components" in out

    def test_file_target_json(self, toy, capsys):
        assert main(["graph", "info", str(toy), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["source"] == "file"
        assert (payload["n"], payload["m"], payload["delta"]) == (5, 6, 3)
        assert payload["components"] == 1
        assert payload["degree_histogram"] == {"2": 3, "3": 2}

    def test_generator_spec_target(self, capsys):
        assert main(["graph", "info", "random_regular:60:4:1", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["source"] == "generator"
        assert payload["n"] == 60 and payload["delta"] == 4

    def test_corpus_name_target(self, capsys):
        assert main(["graph", "info", "mesh-sample",
                     "--corpus-dir", REPO_CORPUS, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["source"] == "corpus"
        assert payload["kind"] == "mesh"

    def test_cached_npz_artifact_target(self, toy, capsys):
        from repro.corpus import ingest

        ingested = ingest(toy)
        artifact = cache.artifact_path(ingested.digest)
        assert main(["graph", "info", str(artifact), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["source"] == "npz artifact"
        assert payload["digest"] == ingested.digest
        assert (payload["n"], payload["m"], payload["delta"]) == (5, 6, 3)

    def test_corrupt_npz_is_a_clean_error(self, tmp_path, capsys):
        path = tmp_path / "bad.npz"
        path.write_bytes(b"garbage")
        code = main(["graph", "info", str(path)])
        assert code == 1
        assert "not a CSR .npz artifact" in capsys.readouterr().err

    def test_malformed_file_is_a_clean_error(self, tmp_path, capsys):
        path = tmp_path / "bad.txt"
        path.write_text("0 1\nnot numbers\n")
        code = main(["graph", "info", str(path)])
        err = capsys.readouterr().err
        assert code == 1
        assert "ERROR" in err and "bad.txt:2" in err

    def test_nonsense_target_rejected(self, capsys):
        with pytest.raises(SystemExit, match="neither a file"):
            main(["graph", "info", "no-such-thing", "--corpus-dir", REPO_CORPUS])

    def test_missing_corpus_dir_is_a_clean_error(self, tmp_path, capsys):
        code = main(["graph", "info", "no-such-thing",
                     "--corpus-dir", str(tmp_path)])
        assert code == 1
        assert "no MANIFEST.json" in capsys.readouterr().err

    def test_bad_generator_spec_rejected(self):
        with pytest.raises(SystemExit, match="FAMILY:N:DELTA"):
            main(["graph", "info", "random_regular:abc:4"])

    def test_parser_has_commands(self):
        parser = build_parser()
        args = parser.parse_args(["corpus", "--graphs", "a", "b"])
        assert args.command == "corpus" and args.graphs == ["a", "b"]
        args = parser.parse_args(["graph", "info", "x", "--json"])
        assert args.command == "graph" and args.as_json is True
