"""Unit tests for message payloads and bit accounting."""

import pytest
from hypothesis import given, strategies as st

from repro.congest.messages import Broadcast, UnsupportedPayload, message_bits


class TestMessageBits:
    def test_none_and_bool(self):
        assert message_bits(None) == 1
        assert message_bits(True) == 1
        assert message_bits(False) == 1

    def test_small_int(self):
        assert message_bits(0) == 1
        assert message_bits(1) == 1
        assert message_bits(2) == 2
        assert message_bits(255) == 8
        assert message_bits(256) == 9

    def test_negative_int_counts_sign(self):
        assert message_bits(-5) == message_bits(5) + 1

    def test_string_tag(self):
        assert message_bits("TRY") == 24
        assert message_bits("") == 8

    def test_tuple_framing(self):
        assert message_bits(("TRY", 3)) == 2 + 24 + 2 + 2

    def test_nested_sequences(self):
        assert message_bits((1, (2, 3))) > message_bits((1, 2))

    def test_unsupported_payload(self):
        with pytest.raises(UnsupportedPayload):
            message_bits({"a": 1})
        with pytest.raises(UnsupportedPayload):
            message_bits(object())

    @given(st.integers(min_value=0, max_value=2**40))
    def test_int_bits_matches_bit_length(self, value):
        assert message_bits(value) == max(1, value.bit_length())

    @given(st.lists(st.integers(min_value=0, max_value=10**6), max_size=8))
    def test_list_bits_at_least_elementwise_sum(self, values):
        total = message_bits(tuple(values))
        assert total >= sum(message_bits(v) for v in values)


class TestBroadcast:
    def test_broadcast_is_frozen(self):
        b = Broadcast(("TRY", 1))
        with pytest.raises(AttributeError):
            b.payload = ("TRY", 2)

    def test_broadcast_equality(self):
        assert Broadcast(5) == Broadcast(5)
        assert Broadcast(5) != Broadcast(6)
